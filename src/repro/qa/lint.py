"""AST-based project linter enforcing the ``QA-*`` rule catalogue.

The linter is a single :mod:`ast` pass per file plus a line scan for
suppression comments.  It is dependency-free (stdlib only) so it can run in
any environment the library itself runs in, including CI images without the
third-party toolchain.

Suppression: append ``# qa: ignore[QA-D001]`` (comma-separate several codes,
the ``QA-`` prefix is optional) to the offending line.  Suppressions are
line-scoped on purpose - a file-wide opt-out would defeat the rules.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import PurePath
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.qa.files import iter_python_files, read_source, suppressed_codes_by_line
from repro.qa.rules import RULES, SIM_SCOPED_SUBPACKAGES, Rule

__all__ = ["Finding", "lint_source", "lint_file", "lint_paths", "iter_python_files"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str

    def format(self, *, hints: bool = True) -> str:
        """Render as ``path:line:col: CODE message`` (plus an indented hint)."""
        head = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        if hints and self.hint:
            return f"{head}\n    hint: {self.hint}"
        return head


# --------------------------------------------------------------------------- #
# scoping
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ModuleScope:
    """Where a file sits relative to the library layout."""

    in_library: bool
    subpackage: Optional[str]
    is_units_module: bool

    def applies(self, rule: Rule) -> bool:
        if rule.scope == "everywhere":
            return True
        if rule.scope == "library":
            return self.in_library
        if rule.scope == "sim-core":
            return self.in_library and self.subpackage in SIM_SCOPED_SUBPACKAGES
        raise ValueError(f"unknown rule scope {rule.scope!r}")  # pragma: no cover


def classify_path(path: str) -> ModuleScope:
    """Classify ``path`` into a :class:`ModuleScope`.

    A file is "in the library" when a path component is the ``repro`` package
    directory; the component after it names the subpackage.
    """
    parts = PurePath(path).parts
    if "repro" not in parts:
        return ModuleScope(in_library=False, subpackage=None, is_units_module=False)
    idx = parts.index("repro")
    rest = parts[idx + 1 :]
    subpackage = rest[0] if len(rest) > 1 else None
    is_units = rest[-2:] == ("util", "units.py") if len(rest) >= 2 else False
    return ModuleScope(in_library=True, subpackage=subpackage, is_units_module=is_units)


# --------------------------------------------------------------------------- #
# helpers shared by several rules
# --------------------------------------------------------------------------- #
#: Legacy / global-state numpy.random attributes (QA-D002).
_LEGACY_NP_RANDOM: Set[str] = {
    "seed",
    "RandomState",
    "get_state",
    "set_state",
    "rand",
    "randn",
    "randint",
    "random",
    "random_sample",
    "ranf",
    "sample",
    "choice",
    "shuffle",
    "permutation",
    "bytes",
    "uniform",
    "normal",
    "standard_normal",
    "lognormal",
    "exponential",
    "poisson",
    "binomial",
    "beta",
    "gamma",
    "pareto",
    "zipf",
}

#: Dotted call names that read a wall clock (QA-D004).
_WALL_CLOCK_CALLS: Set[str] = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "date.today",
    "datetime.date.today",
}

#: Observer methods whose arguments form a span/event payload (QA-D006).
_OBS_PAYLOAD_METHODS: Set[str] = {"span", "event"}

#: Numeric literals that smell like unit conversion factors (QA-U101).
_MAGIC_UNIT_LITERALS: Set[float] = {
    1_000.0,  # k / ms-per-s
    1_000_000.0,  # M / 1e6
    1_000_000_000.0,  # G / 1e9
    125_000.0,  # Mbps -> bytes/s
    125_000_000.0,  # Gbps -> bytes/s
    1_024.0,  # binary k (the library is decimal; 1024 is always a mistake)
    1_048_576.0,  # binary M
    3_600.0,  # seconds per hour
}

#: EventQueue / Simulator internals protected by QA-S202.
_PROTECTED_SIM_ATTRS: Set[str] = {
    "_heap",
    "_counter",
    "_len_active",
    "_now",
    "_processed",
    "_queue",
}

#: Attribute names treated as simulation times by QA-S201.
_TIME_ATTRS: Set[str] = {
    "time",
    "now",
    "peek_time",
    "completed_at",
    "decided_at",
    "started_at",
    "requested_at",
    "activated_at",
    "remainder_started_at",
}

_IDENT_SPLIT = re.compile(r"[^a-zA-Z0-9]+")


def _name_tokens(identifier: str) -> Set[str]:
    """Lower-case underscore/camelCase tokens of an identifier."""
    spaced = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", "_", identifier)
    return {tok.lower() for tok in _IDENT_SPLIT.split(spaced) if tok}


def _is_time_like(node: ast.expr) -> bool:
    """Heuristic: does this expression denote a simulation time?"""
    if isinstance(node, ast.Attribute):
        return node.attr in _TIME_ATTRS or "time" in _name_tokens(node.attr)
    if isinstance(node, ast.Name):
        tokens = _name_tokens(node.id)
        return "time" in tokens or "now" in tokens
    if isinstance(node, ast.Call):
        return _is_time_like(node.func)
    return False


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def _expr_identifiers(node: ast.expr) -> Set[str]:
    """All Name ids and Attribute attrs appearing in an expression."""
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
    return out


# --------------------------------------------------------------------------- #
# the visitor
# --------------------------------------------------------------------------- #
class _RuleVisitor(ast.NodeVisitor):
    """One-pass visitor that accumulates findings for every active rule."""

    def __init__(self, path: str, scope: ModuleScope):
        self.path = path
        self.scope = scope
        self.findings: List[Finding] = []
        #: Names bound to the numpy module in this file (``numpy``, ``np``).
        self.numpy_aliases: Set[str] = set()
        #: Names bound to numpy.random's default_rng via from-import.
        self.default_rng_aliases: Set[str] = set()
        #: Function-nesting depth (0 = module scope) for QA-D005.
        self._depth = 0

    # -- plumbing ------------------------------------------------------- #
    def _active(self, code: str) -> bool:
        return self.scope.applies(RULES[code])

    def _add(self, code: str, node: ast.AST, message: str) -> None:
        if not self._active(code):
            return
        if code.startswith("QA-U1") and self.scope.is_units_module:
            return  # units.py defines the conversions; it may use raw factors
        rule = RULES[code]
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
                hint=rule.hint,
            )
        )

    # -- imports (QA-D001 + alias tracking) ------------------------------ #
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._add("QA-D001", node, "import of the stdlib `random` module")
            if alias.name == "numpy":
                self.numpy_aliases.add(alias.asname or "numpy")
            if alias.name == "numpy.random":
                self.numpy_aliases.add("numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random" and node.level == 0:
            self._add("QA-D001", node, "import from the stdlib `random` module")
        if node.module in ("numpy.random", "numpy"):
            for alias in node.names:
                if alias.name == "default_rng":
                    self.default_rng_aliases.add(alias.asname or "default_rng")
                if node.module == "numpy.random" and alias.name in _LEGACY_NP_RANDOM:
                    self._add(
                        "QA-D002",
                        node,
                        f"import of legacy numpy.random.{alias.name}",
                    )
                if alias.name == "random":
                    self.numpy_aliases.add(alias.asname or "random")
        self.generic_visit(node)

    # -- attribute-based rules (QA-D002, QA-S202) ------------------------ #
    def _is_np_random_attr(self, node: ast.Attribute) -> bool:
        """True for ``<numpy alias>.random.<attr>`` chains."""
        value = node.value
        return (
            isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in self.numpy_aliases
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _LEGACY_NP_RANDOM and self._is_np_random_attr(node):
            self._add(
                "QA-D002",
                node,
                f"use of legacy/global numpy RNG `np.random.{node.attr}`",
            )
        if node.attr in _PROTECTED_SIM_ATTRS and self.scope.subpackage != "sim":
            self._add(
                "QA-S202",
                node,
                f"access to protected simulator internal `.{node.attr}` outside repro.sim",
            )
        self.generic_visit(node)

    # -- call-based rules (QA-D003, QA-D004) ----------------------------- #
    def _is_default_rng_call(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self.default_rng_aliases:
            return True
        if isinstance(func, ast.Attribute) and func.attr == "default_rng":
            return self._is_np_random_attr(func) or (
                isinstance(func.value, ast.Name) and func.value.id in self.numpy_aliases
            )
        return False

    def _is_generator_ctor_call(self, node: ast.Call) -> bool:
        func = node.func
        return (
            isinstance(func, ast.Attribute)
            and func.attr in ("Generator", "RandomState")
            and self._is_np_random_attr(func)
        )

    def visit_Call(self, node: ast.Call) -> None:
        self._check_converter_arg(node)
        if self._is_default_rng_call(node) and not node.args and not node.keywords:
            self._add(
                "QA-D003",
                node,
                "argless numpy.random.default_rng() seeds from OS entropy",
            )
        dotted = _dotted_name(node.func)
        if dotted is not None and dotted in _WALL_CLOCK_CALLS:
            self._add(
                "QA-D004",
                node,
                f"wall-clock call `{dotted}()` inside the simulation core",
            )
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _OBS_PAYLOAD_METHODS:
            self._check_span_payload(node)
        self.generic_visit(node)

    def _check_span_payload(self, node: ast.Call) -> None:
        """QA-D006: no wall-clock calls anywhere in a span/event payload."""
        for expr in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(expr):
                if not isinstance(sub, ast.Call):
                    continue
                dotted = _dotted_name(sub.func)
                if dotted is not None and dotted in _WALL_CLOCK_CALLS:
                    self._add(
                        "QA-D006",
                        sub,
                        f"wall-clock call `{dotted}()` inside a span/event payload",
                    )

    # -- module-level generators (QA-D005) ------------------------------- #
    def _check_module_level_rng(self, node: ast.Assign) -> None:
        if self._depth > 0 or not isinstance(node.value, ast.Call):
            return
        call = node.value
        if self._is_default_rng_call(call) or self._is_generator_ctor_call(call):
            self._add(
                "QA-D005",
                node,
                "random Generator constructed at module scope is shared global state",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_module_level_rng(node)
        self._check_unit_suffix_assign(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._depth += 1  # class bodies are not module scope for QA-D005
        self.generic_visit(node)
        self._depth -= 1

    # -- unit rules (QA-U101, QA-U102) ----------------------------------- #
    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Mult, ast.Div)):
            for side in (node.left, node.right):
                if (
                    isinstance(side, ast.Constant)
                    and isinstance(side.value, (int, float))
                    and not isinstance(side.value, bool)
                    and float(side.value) in _MAGIC_UNIT_LITERALS
                ):
                    self._add(
                        "QA-U101",
                        side,
                        f"magic unit literal {side.value!r} in arithmetic",
                    )
        self.generic_visit(node)

    _CONVERTERS: Dict[str, Tuple[str, str]] = {
        # converter name -> (token the *argument* must NOT carry,
        #                    token the *result target* must NOT carry)
        "mbps_to_bytes_per_s": ("bytes", "mbps"),
        "bytes_per_s_to_mbps": ("mbps", "bytes"),
    }

    @staticmethod
    def _called_name(node: ast.Call) -> Optional[str]:
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return None

    def _check_converter_arg(self, node: ast.Call) -> None:
        func_name = self._called_name(node)
        if func_name not in self._CONVERTERS:
            return
        bad_arg_token = self._CONVERTERS[func_name][0]
        for arg in node.args:
            idents = _expr_identifiers(arg)
            tokens: Set[str] = set()
            for ident in idents:
                tokens |= _name_tokens(ident)
            if bad_arg_token in tokens:
                self._add(
                    "QA-U102",
                    node,
                    f"`{func_name}` applied to a value that already looks like "
                    f"{bad_arg_token} (argument mentions `{bad_arg_token}`)",
                )
                return

    def _check_unit_suffix_assign(self, node: ast.Assign) -> None:
        if not isinstance(node.value, ast.Call):
            return
        func_name = self._called_name(node.value)
        if func_name not in self._CONVERTERS:
            return
        _, bad_target_token = self._CONVERTERS[func_name]
        for target in node.targets:
            if isinstance(target, ast.Name):
                if bad_target_token in _name_tokens(target.id):
                    self._add(
                        "QA-U102",
                        node,
                        f"result of `{func_name}` stored in `{target.id}`, whose "
                        f"name claims the opposite unit ({bad_target_token})",
                    )

    # -- time equality (QA-S201) ----------------------------------------- #
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _is_time_like(left) or _is_time_like(right)
            ):
                self._add(
                    "QA-S201",
                    node,
                    "float equality on event/simulation times",
                )
                break
        self.generic_visit(node)


# --------------------------------------------------------------------------- #
# entry points
# --------------------------------------------------------------------------- #
def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint Python ``source``; ``path`` determines rule scoping."""
    scope = classify_path(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code="QA-E000",
                message=f"syntax error: {exc.msg}",
                hint="fix the syntax error; the file could not be linted",
            )
        ]
    visitor = _RuleVisitor(path, scope)
    visitor.visit(tree)
    suppressed = suppressed_codes_by_line(source)
    findings = [
        f
        for f in visitor.findings
        if f.code not in suppressed.get(f.line, set())
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_file(path: str) -> List[Finding]:
    """Lint one file on disk."""
    return lint_source(read_source(path), path=str(path))


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    """Lint every Python file under ``paths`` and return all findings."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path))
    return findings
