"""The QA rule and invariant catalogues.

Static lint rules carry ``QA-D*`` (determinism), ``QA-U*`` (units) and
``QA-S*`` (simulator safety) codes; whole-program flow rules enforced by the
``repro check`` analyzer carry ``QA-F*`` codes; runtime invariants enforced
by the sanitizer carry ``QA-R*`` codes.  Codes are stable: once shipped they
are never renumbered, so suppression comments, baselines and CI logs stay
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Rule", "Invariant", "RULES", "INVARIANTS", "rule", "invariant"]

#: Library subpackages that constitute the simulation core: wall-clock access
#: is banned there outright (QA-D004).
SIM_SCOPED_SUBPACKAGES: Tuple[str, ...] = ("sim", "tcp", "net", "core", "overlay")


@dataclass(frozen=True)
class Rule:
    """One static lint rule.

    ``scope`` names where the rule applies:

    * ``"everywhere"`` - all linted files (library, tests, benchmarks);
    * ``"library"`` - only files inside the ``repro`` package;
    * ``"sim-core"`` - only the simulation subpackages
      (:data:`SIM_SCOPED_SUBPACKAGES`).

    ``analyzer`` names the tool that enforces the rule: ``"lint"`` for the
    single-file AST linter (``repro lint``), ``"flow"`` for the whole-program
    call-graph analyzer (``repro check``).
    """

    code: str
    name: str
    summary: str
    hint: str
    scope: str = "everywhere"
    example_bad: str = ""
    example_good: str = ""
    analyzer: str = "lint"


@dataclass(frozen=True)
class Invariant:
    """One runtime invariant enforced by the sanitizer."""

    code: str
    name: str
    summary: str
    hint: str


_RULE_LIST: Tuple[Rule, ...] = (
    # ------------------------------------------------------------- D-rules #
    Rule(
        code="QA-D001",
        name="no-stdlib-random",
        summary=(
            "the stdlib `random` module is banned: its global state makes runs "
            "order-dependent and irreproducible"
        ),
        hint=(
            "draw from a numpy Generator obtained via "
            "repro.util.rng.SeedBank.generator(...) / derive_seed(...)"
        ),
        scope="everywhere",
        example_bad="import random\nrandom.shuffle(order)",
        example_good='bank.generator("class-plan").shuffle(order)',
    ),
    Rule(
        code="QA-D002",
        name="no-legacy-numpy-rng",
        summary=(
            "legacy/global numpy RNG (np.random.seed, np.random.RandomState, "
            "module-level draws like np.random.uniform) is banned: it shares "
            "hidden global state across consumers"
        ),
        hint=(
            "use the new-style Generator API seeded through "
            "repro.util.rng.SeedBank (np.random.Generator / SeedSequence / "
            "default_rng(seed) are fine)"
        ),
        scope="everywhere",
        example_bad="np.random.seed(0); x = np.random.uniform()",
        example_good='rng = bank.generator("noise"); x = rng.uniform()',
    ),
    Rule(
        code="QA-D003",
        name="no-unseeded-default-rng",
        summary=(
            "argless numpy.random.default_rng() draws OS entropy: every run "
            "differs and results cannot be reproduced"
        ),
        hint=(
            "pass an explicit seed, ideally derived via "
            "repro.util.rng.derive_seed / SeedBank.seed(...)"
        ),
        scope="everywhere",
        example_bad="rng = np.random.default_rng()",
        example_good="rng = np.random.default_rng(derive_seed(root, 'probe', 3))",
    ),
    Rule(
        code="QA-D004",
        name="no-wall-clock-in-sim",
        summary=(
            "wall-clock access (time.time, time.monotonic, datetime.now, ...) "
            "inside the simulation core makes results depend on host speed"
        ),
        hint="use the simulation clock (Simulator.now); timestamps belong at the CLI edge",
        scope="sim-core",
        example_bad="started = time.time()",
        example_good="started = sim.now",
    ),
    Rule(
        code="QA-D005",
        name="no-module-level-generator",
        summary=(
            "a random Generator constructed at module import time is shared by "
            "every consumer of the module: stream identity then depends on "
            "import order and call interleaving"
        ),
        hint=(
            "construct generators where they are used, from a SeedBank handed "
            "down by the caller"
        ),
        scope="everywhere",
        example_bad="_RNG = np.random.default_rng(42)  # at module scope",
        example_good="def sample(rng: np.random.Generator): ...",
    ),
    Rule(
        code="QA-D006",
        name="no-wall-clock-in-span-payload",
        summary=(
            "a wall-clock call inside an obs span/event payload leaks host "
            "timing into the trace: traces then differ run to run and cannot "
            "be diffed or replayed"
        ),
        hint=(
            "key spans by sim-time (Simulator.now) or a pre-sampled injected "
            "clock value; sample wall clocks outside the payload expression"
        ),
        scope="everywhere",
        example_bad='obs.span("unit", uid, t0, time.monotonic())',
        example_good='ended = clock()\nobs.span("unit", uid, t0, ended - origin)',
    ),
    # ------------------------------------------------------------- U-rules #
    Rule(
        code="QA-U101",
        name="no-magic-unit-literal",
        summary=(
            "magic numeric literal that looks like a unit conversion factor "
            "(1e6, 1000, 3600, 125000, 1024, ...) in a multiplication/division"
        ),
        hint=(
            "use repro.util.units (KB/MB/GB, mbps_to_bytes_per_s, "
            "bytes_per_s_to_mbps, s_to_ms, MINUTE/HOUR) or a named constant"
        ),
        scope="library",
        example_bad="mbps = rate * 8.0 / 1e6",
        example_good="mbps = units.bytes_per_s_to_mbps(rate)",
    ),
    Rule(
        code="QA-U102",
        name="no-mismatched-unit-conversion",
        summary=(
            "a unit converter applied to a value whose name says it is already "
            "in the target unit (or whose result is stored under the wrong "
            "unit suffix)"
        ),
        hint=(
            "check the direction: mbps_to_bytes_per_s takes Mbps and returns "
            "bytes/s; bytes_per_s_to_mbps the reverse; name variables after "
            "what they hold"
        ),
        scope="everywhere",
        example_bad="cap_mbps = mbps_to_bytes_per_s(profile.rate_mbps)",
        example_good="cap_bytes_per_s = mbps_to_bytes_per_s(profile.rate_mbps)",
    ),
    # ------------------------------------------------------------- F-rules #
    # Whole-program flow rules: enforced by `repro check` (repro.qa.flow),
    # which sees across call and module boundaries the per-file linter
    # cannot.  Suppress inline with `# qa: ignore[CODE]` or accept a finding
    # in qa-baseline.json with a justification.
    Rule(
        code="QA-F001",
        name="no-unseeded-rng-flow",
        summary=(
            "a generator-construction site (default_rng / SeedSequence / "
            "PCG64 / SeedBank) can receive None through a call chain: some "
            "caller omits the seed argument, so the stream is drawn from OS "
            "entropy and the run is irreproducible"
        ),
        hint=(
            "thread a SeedBank-derived seed through every call path; drop "
            "`= None` seed defaults so forgetting a seed is a TypeError"
        ),
        scope="library",
        example_bad=(
            "def make(seed=None): return default_rng(seed)\n"
            "gen = make()  # three files away"
        ),
        example_good="gen = make(bank.seed('probe', i))",
        analyzer="flow",
    ),
    Rule(
        code="QA-F002",
        name="no-wall-clock-into-artefact",
        summary=(
            "a wall-clock value (time.time, datetime.now, ...) flows across "
            "a call boundary into an artefact sink (TraceStore records, "
            "saved JSONL/CSV, obs payloads, checkpoint manifests): the "
            "artefact then differs run to run"
        ),
        hint=(
            "keep wall clocks in telemetry (stderr/progress); artefact "
            "fields must derive from the simulation clock or the plan"
        ),
        scope="library",
        example_bad=(
            "def stamp(): return time.time()\n"
            "store.append(replace(rec, note=stamp()))"
        ),
        example_good="record fields carry sim.now; wall time goes to stderr",
        analyzer="flow",
    ),
    Rule(
        code="QA-F003",
        name="no-unordered-iteration-into-artefact",
        summary=(
            "iteration over a dict/set whose order is not pinned feeds an "
            "artefact sink or WorkUnit plan construction (possibly through "
            "intermediate calls): output order then depends on insertion "
            "history or hash seeds instead of a sorted key"
        ),
        hint=(
            "iterate `sorted(d)` / `sorted(d.items())` (sets always; dicts "
            "whenever construction order is not itself canonical) before "
            "the values reach an artefact"
        ),
        scope="library",
        example_bad="rows = [fmt(k, v) for k, v in groups.items()]",
        example_good="rows = [fmt(k, groups[k]) for k in sorted(groups)]",
        analyzer="flow",
    ),
    Rule(
        code="QA-F004",
        name="no-spawn-unsafe-worker-state",
        summary=(
            "state reachable from a worker-process entry point does not "
            "survive the spawn boundary: module-global mutables mutated in "
            "workers, unpicklable captures (lambdas, open handles, locks) "
            "passed as process args, or nested functions used as targets"
        ),
        hint=(
            "workers must rebuild context from picklable plan data "
            "(module-level target fn + primitive args); module globals "
            "written in a worker are invisible to the parent and to other "
            "workers"
        ),
        scope="library",
        example_bad="Process(target=lambda: run(unit), args=())",
        example_good="Process(target=_worker_main, args=(spec, seed))",
        analyzer="flow",
    ),
    Rule(
        code="QA-F005",
        name="no-mutable-default-argument",
        summary=(
            "a mutable default argument ([] / {} / set() / dict() / list()) "
            "is evaluated once at def time and shared by every call: state "
            "leaks between logically independent invocations"
        ),
        hint="default to None and construct the fresh container inside the body",
        scope="library",
        example_bad="def collect(into=[]): into.append(x); return into",
        example_good="def collect(into=None): into = [] if into is None else into",
        analyzer="flow",
    ),
    # ------------------------------------------------------------- S-rules #
    Rule(
        code="QA-S201",
        name="no-float-time-equality",
        summary=(
            "== / != between event/simulation times: float time arithmetic "
            "makes exact equality fragile (use ordering, tolerances, or "
            "math.isnan/math.isinf for the special values)"
        ),
        hint=(
            "compare times with < / <= / math.isclose; test NaN with "
            "math.isnan(t) and infinity with math.isinf(t)"
        ),
        scope="library",
        example_bad='if next_time == float("inf"): ...',
        example_good="if math.isinf(next_time): ...",
    ),
    Rule(
        code="QA-S202",
        name="no-event-queue-state-mutation",
        summary=(
            "access to EventQueue/Simulator internals (_heap, _counter, "
            "_len_active, _now, _processed, _queue) outside repro.sim breaks "
            "the kernel's ordering and accounting invariants"
        ),
        hint=(
            "use the public API (push/pop/cancel/peek_time, schedule_at/"
            "schedule_after/run); if the API is missing something, extend "
            "repro.sim instead of reaching around it"
        ),
        scope="library",
        example_bad="sim._now = 0.0",
        example_good="sim.reset(start_time=0.0)",
    ),
)

_INVARIANT_LIST: Tuple[Invariant, ...] = (
    Invariant(
        code="QA-R001",
        name="event-time-monotonic",
        summary="the event loop never executes an event scheduled before the current clock",
        hint=(
            "an event with time < now means something pushed directly onto the "
            "queue, bypassing Simulator.schedule_at's guard"
        ),
    ),
    Invariant(
        code="QA-R002",
        name="flow-byte-conservation",
        summary=(
            "a flow's delivered byte count never decreases, never exceeds its "
            "requested size (plus completion slack), and its rate is finite "
            "and non-negative"
        ),
        hint="check FluidFlow._advance call sites and the allocation the engine installed",
    ),
    Invariant(
        code="QA-R003",
        name="maxmin-allocation-valid",
        summary=(
            "every rate vector the engine installs is feasible, cap-respecting "
            "and max-min fair (verify_maxmin post-condition)"
        ),
        hint="repro.tcp.maxmin.maxmin_allocate returned an invalid allocation",
    ),
    Invariant(
        code="QA-R004",
        name="link-capacity-respected",
        summary="the summed rate across each link never exceeds its capacity at that instant",
        hint=(
            "a link is oversubscribed: either the allocator ignored a link or "
            "a stale rate survived a capacity breakpoint"
        ),
    ),
    Invariant(
        code="QA-R005",
        name="probe-accounting-consistent",
        summary=(
            "probe phases are time-ordered (started <= decided <= completed), "
            "the winner is one of the candidates, and probes never move more "
            "than the requested probe bytes"
        ),
        hint="check ProbeEngine teardown of losing probes and session phase bookkeeping",
    ),
    Invariant(
        code="QA-R006",
        name="fault-window-blackout",
        summary=(
            "a link inside a registered blackout fault window carries (near) "
            "zero capacity and zero load: no bytes cross a partitioned or "
            "fully failed path while the fault is active"
        ),
        hint=(
            "the chaos fault plan and the rewritten capacity traces disagree; "
            "check Scenario.with_faults / apply_fault_windows and that the "
            "blackout spans handed to watch_fault_windows use the same link "
            "names as the topology"
        ),
    ),
    Invariant(
        code="QA-R007",
        name="recovery-bytes-monotone",
        summary=(
            "bytes_received snapshots along a session's recovery timeline "
            "never decrease: progress survives stalls, failovers and reprobes"
        ),
        hint=(
            "a recovery event recorded fewer delivered bytes than its "
            "predecessor; check how the resilient session snapshots flow "
            "progress when tearing down and re-issuing transfers"
        ),
    ),
)


def _index_rules(rules: Tuple[Rule, ...]) -> Dict[str, Rule]:
    out: Dict[str, Rule] = {}
    for r in rules:
        if r.code in out:
            raise ValueError(f"duplicate rule code {r.code}")
        out[r.code] = r
    return out


def _index_invariants(invs: Tuple[Invariant, ...]) -> Dict[str, Invariant]:
    out: Dict[str, Invariant] = {}
    for inv in invs:
        if inv.code in out:
            raise ValueError(f"duplicate invariant code {inv.code}")
        out[inv.code] = inv
    return out


#: Code -> rule, in catalogue order.
RULES: Dict[str, Rule] = _index_rules(_RULE_LIST)
#: Code -> runtime invariant, in catalogue order.
INVARIANTS: Dict[str, Invariant] = _index_invariants(_INVARIANT_LIST)


def rule(code: str) -> Rule:
    """Look up a lint rule by its ``QA-*`` code."""
    return RULES[code]


def invariant(code: str) -> Invariant:
    """Look up a runtime invariant by its ``QA-R*`` code."""
    return INVARIANTS[code]
