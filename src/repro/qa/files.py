"""Shared file discovery and suppression parsing for the QA tools.

Both the per-file linter (``repro lint``) and the whole-program analyzer
(``repro check``) operate on the same universe of files and honour the same
line-scoped ``# qa: ignore[CODE]`` comments.  This module is the single
implementation of both concerns so the two tools can never drift apart on
which files they see or which suppressions they respect.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, Sequence, Set

__all__ = [
    "iter_python_files",
    "read_source",
    "suppressed_codes_by_line",
]

#: ``# qa: ignore[QA-D001]`` (codes comma-separable, ``QA-`` prefix optional).
_SUPPRESS_RE = re.compile(r"#\s*qa:\s*ignore\[([A-Za-z0-9_\-,\s]+)\]")


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Yield ``.py`` files under ``paths`` (files or directories), sorted.

    Directories are walked recursively; each file is yielded at most once
    even when named through several overlapping roots.
    """
    seen: Set[str] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            candidates = [p]
        else:
            candidates = []
        for f in candidates:
            key = str(f)
            if key not in seen:
                seen.add(key)
                yield key


def read_source(path: str) -> str:
    """Read a source file as UTF-8 text."""
    return Path(path).read_text(encoding="utf-8")


def suppressed_codes_by_line(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the set of ``QA-*`` codes suppressed there.

    Codes are upper-cased and given the ``QA-`` prefix when omitted, so
    ``# qa: ignore[d001, QA-F003]`` suppresses ``QA-D001`` and ``QA-F003``.
    """
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            codes: Set[str] = set()
            for raw in match.group(1).split(","):
                code = raw.strip().upper()
                if not code:
                    continue
                if not code.startswith("QA-"):
                    code = f"QA-{code}"
                codes.add(code)
            out[lineno] = codes
    return out
