"""Accepted-findings baseline for ``repro check``.

A whole-program analyzer over-approximates; some findings are reviewed and
*accepted* (with a written justification) rather than fixed.  The baseline
file records those so CI can gate on "no findings beyond the baseline"
while the accepted set stays visible, versioned and justified.

Entries key on ``(code, path, symbol)`` - the rule, the file and the
qualified function name - NOT on line numbers, so ordinary edits above a
finding do not churn the baseline.  Matching normalizes path separators and
tolerates a path-prefix difference (the committed baseline stores
repo-relative paths; a checkout may analyze them through an absolute root).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.qa.flow.report import FlowFinding

__all__ = ["BaselineEntry", "Baseline", "BaselineResult", "write_baseline"]

SCHEMA = "repro-check-baseline/1"


def _norm(path: str) -> str:
    return path.replace("\\", "/")


def _paths_match(finding_path: str, entry_path: str) -> bool:
    a, b = _norm(finding_path), _norm(entry_path)
    if a == b:
        return True
    longer, shorter = (a, b) if len(a) >= len(b) else (b, a)
    return longer.endswith("/" + shorter)


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding."""

    code: str
    path: str
    symbol: str
    justification: str

    def matches(self, finding: FlowFinding) -> bool:
        return (
            finding.code == self.code
            and finding.symbol == self.symbol
            and _paths_match(finding.path, self.path)
        )

    def to_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "path": _norm(self.path),
            "symbol": self.symbol,
            "justification": self.justification,
        }


@dataclass
class BaselineResult:
    """Outcome of applying a baseline to a finding list."""

    new: List[FlowFinding]
    accepted: List[FlowFinding]
    stale: List[BaselineEntry]


class Baseline:
    """A loaded set of accepted findings."""

    def __init__(self, entries: Sequence[BaselineEntry]):
        self.entries: Tuple[BaselineEntry, ...] = tuple(entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline {path!r} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or data.get("schema") != SCHEMA:
            raise ValueError(
                f"baseline {path!r} missing schema marker {SCHEMA!r}"
            )
        raw = data.get("findings")
        if not isinstance(raw, list):
            raise ValueError(f"baseline {path!r}: 'findings' must be a list")
        entries: List[BaselineEntry] = []
        for i, item in enumerate(raw):
            if not isinstance(item, dict):
                raise ValueError(f"baseline {path!r}: findings[{i}] not an object")
            try:
                entries.append(
                    BaselineEntry(
                        code=str(item["code"]),
                        path=str(item["path"]),
                        symbol=str(item["symbol"]),
                        justification=str(item.get("justification", "")),
                    )
                )
            except KeyError as exc:
                raise ValueError(
                    f"baseline {path!r}: findings[{i}] missing key {exc}"
                ) from exc
        return cls(entries)

    def apply(self, findings: Sequence[FlowFinding]) -> BaselineResult:
        new: List[FlowFinding] = []
        accepted: List[FlowFinding] = []
        used: set = set()
        for finding in findings:
            entry_hit = None
            for i, entry in enumerate(self.entries):
                if entry.matches(finding):
                    entry_hit = i
                    break
            if entry_hit is None:
                new.append(finding)
            else:
                accepted.append(finding)
                used.add(entry_hit)
        stale = [e for i, e in enumerate(self.entries) if i not in used]
        return BaselineResult(new=new, accepted=accepted, stale=stale)


def write_baseline(
    findings: Sequence[FlowFinding], path: str, *, justification: str = "TODO: justify or fix"
) -> None:
    """Write a baseline accepting every current finding (for triage)."""
    seen: Dict[Tuple[str, str, str], BaselineEntry] = {}
    for f in sorted(findings, key=FlowFinding.sort_key):
        key = (f.code, _norm(f.path), f.symbol)
        if key not in seen:
            seen[key] = BaselineEntry(
                code=f.code,
                path=_norm(f.path),
                symbol=f.symbol,
                justification=justification,
            )
    doc = {
        "schema": SCHEMA,
        "findings": [
            e.to_dict()
            for e in sorted(seen.values(), key=lambda e: (e.path, e.code, e.symbol))
        ],
    }
    Path(path).write_text(
        json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
