"""Helpers shared by the ``QA-F`` dataflow passes."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.qa.flow.callgraph import FunctionInfo, dotted_name

__all__ = [
    "basename",
    "iter_own_nodes",
    "local_name_assignments",
    "map_call_args",
    "resolve_to_param",
]


def basename(expr: ast.expr) -> Optional[str]:
    """Last component of a call target (``np.random.default_rng`` -> that attr)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def iter_own_nodes(func: FunctionInfo) -> Iterator[ast.AST]:
    """Walk a function body, excluding nested function/class bodies.

    Nested definitions carry their own :class:`FunctionInfo`, so each pass
    visits every statement exactly once project-wide.
    """
    stack = list(ast.iter_child_nodes(func.node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def local_name_assignments(func: FunctionInfo) -> Dict[str, ast.expr]:
    """Map local names to the expression last assigned to them (simple
    ``x = expr`` statements only - tuple targets and augmented assignments
    are ignored, which only loses precision, never soundness for the
    *presence* of a hazard)."""
    out: Dict[str, ast.expr] = {}
    for node in iter_own_nodes(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                out[target.id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                out[node.target.id] = node.value
    return out


def resolve_to_param(
    expr: ast.expr,
    func: FunctionInfo,
    assignments: Dict[str, ast.expr],
    *,
    max_hops: int = 8,
) -> Optional[str]:
    """Resolve ``expr`` to a parameter of ``func`` through simple local
    aliasing (``x = seed; ... use(x)``), or ``None``."""
    params: Set[str] = set(func.params) | set(func.kwonly)
    cur = expr
    for _ in range(max_hops):
        if not isinstance(cur, ast.Name):
            return None
        if cur.id in params:
            return cur.id
        nxt = assignments.get(cur.id)
        if nxt is None or nxt is cur:
            return None
        cur = nxt
    return None


def map_call_args(
    call: ast.Call, callee: FunctionInfo
) -> Optional[Dict[str, ast.expr]]:
    """Map a call's arguments onto ``callee``'s parameter names.

    Returns ``None`` when the call uses ``*args``/``**kwargs`` (the mapping
    is then unknowable statically).  Parameters absent from the result take
    their declared default at runtime.
    """
    params = callee.call_params()
    mapping: Dict[str, ast.expr] = {}
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            return None
        if i < len(params):
            mapping[params[i]] = arg
    for kw in call.keywords:
        if kw.arg is None:
            return None
        mapping[kw.arg] = kw.value
    return mapping


def call_written_name(call: ast.Call) -> Optional[str]:
    """Dotted name of the call target as written, if it is a pure chain."""
    return dotted_name(call.func)
