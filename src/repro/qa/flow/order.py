"""QA-F003: dict/set iteration order reaching artefacts.

``dict`` iteration follows insertion order and ``set`` iteration follows
hash order (randomized across processes for strings).  Neither is an
explicit, reviewable key.  When such an iteration's products end up in a
campaign artefact - a saved store, a record or :class:`WorkUnit`
constructor, a JSON/checkpoint dump, an obs payload - the artefact's byte
layout silently depends on construction history instead of a sorted key.

The pass is interprocedural in its *sink* reasoning: a function whose
return value feeds an artefact sink in some caller (transitively) is
"artefact-relevant", and hazardous iterations inside any artefact-relevant
function are flagged.  ``sorted(...)`` wrapping the iterable (possibly
under ``list``/``tuple``/``enumerate``/``reversed``) discharges the hazard.

Both hazard kinds are gated on artefact relevance: iteration feeding pure
computation (sums, max, membership) is order-insensitive and not worth a
finding.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.qa.flow._shared import (
    basename,
    iter_own_nodes,
    local_name_assignments,
    map_call_args,
)
from repro.qa.flow.callgraph import FunctionInfo, Project
from repro.qa.flow.report import FlowFinding
from repro.qa.flow.taint import is_artefact_sink

__all__ = ["check_iteration_order"]

#: `.attr()` views whose iteration order is the mapping's order.
_DICT_VIEWS: Set[str] = {"keys", "values", "items"}

#: Wrappers that preserve (or pin) iteration order; `sorted` sanitizes.
_ORDER_WRAPPERS: Set[str] = {"list", "tuple", "enumerate", "reversed", "iter"}

#: Annotation heads that mark a parameter as a mapping / set.
_DICT_ANNOTATIONS: Set[str] = {"dict", "Dict", "Mapping", "MutableMapping", "defaultdict", "OrderedDict", "Counter"}
_SET_ANNOTATIONS: Set[str] = {"set", "Set", "AbstractSet", "MutableSet", "FrozenSet", "frozenset"}

#: Call basenames that construct dicts / sets.
_DICT_CTORS: Set[str] = {"dict", "defaultdict", "OrderedDict", "Counter", "group_by"}
_SET_CTORS: Set[str] = {"set", "frozenset"}


def _annotation_head(ann: Optional[ast.expr]) -> Optional[str]:
    if ann is None:
        return None
    node = ann
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the head identifier.
        text = node.value.split("[", 1)[0].strip()
        return text.rsplit(".", 1)[-1] or None
    name = basename(node) if isinstance(node, (ast.Name, ast.Attribute)) else None
    return name


class _Typer:
    """Best-effort "is this expression a dict / a set" classifier."""

    def __init__(self, project: Project):
        self.project = project
        self.returns_kind: Dict[str, str] = {}  # qualname -> "dict" | "set"
        self._site_index: Dict[int, Tuple[str, ...]] = {}
        for sites in project.calls_by_caller.values():
            for site in sites:
                self._site_index[id(site.node)] = site.callees

    def compute(self) -> None:
        changed = True
        rounds = 0
        while changed and rounds < 10:
            changed = False
            rounds += 1
            for func in self.project.functions.values():
                if func.qualname in self.returns_kind:
                    continue
                kind = self._returns(func)
                if kind is not None:
                    self.returns_kind[func.qualname] = kind
                    changed = True

    def _returns(self, func: FunctionInfo) -> Optional[str]:
        env = self._locals(func)
        for node in iter_own_nodes(func):
            if isinstance(node, ast.Return) and node.value is not None:
                kind = self.kind_of(node.value, func, env)
                if kind is not None:
                    return kind
        return None

    def _locals(self, func: FunctionInfo) -> Dict[str, str]:
        """Local/parameter name -> "dict"/"set" where determinable."""
        env: Dict[str, str] = {}
        node = func.node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
                head = _annotation_head(arg.annotation)
                if head in _DICT_ANNOTATIONS:
                    env[arg.arg] = "dict"
                elif head in _SET_ANNOTATIONS:
                    env[arg.arg] = "set"
        for stmt in iter_own_nodes(func):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    kind = self.kind_of(stmt.value, func, env)
                    if kind is not None:
                        env[target.id] = kind
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                head = _annotation_head(stmt.annotation)
                if head in _DICT_ANNOTATIONS:
                    env[stmt.target.id] = "dict"
                elif head in _SET_ANNOTATIONS:
                    env[stmt.target.id] = "set"
        return env

    def kind_of(
        self, expr: ast.expr, func: FunctionInfo, env: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(expr, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Call):
            name = basename(expr.func)
            if name in _DICT_CTORS:
                return "dict"
            if name in _SET_CTORS:
                return "set"
            for callee in self._site_index.get(id(expr), ()):
                kind = self.returns_kind.get(callee)
                if kind is not None:
                    return kind
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            left = self.kind_of(expr.left, func, env)
            right = self.kind_of(expr.right, func, env)
            if "set" in (left, right):
                return "set"
        return None


def _iter_iterables(func: FunctionInfo) -> Iterator[ast.expr]:
    """Every expression a loop or comprehension iterates over."""
    for node in iter_own_nodes(func):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield gen.iter


def _unwrap(expr: ast.expr) -> Tuple[ast.expr, bool]:
    """Strip order-preserving wrappers; report whether `sorted` was seen."""
    cur = expr
    for _ in range(6):
        if isinstance(cur, ast.Call):
            name = basename(cur.func)
            if name == "sorted":
                return cur, True
            if name in _ORDER_WRAPPERS and cur.args:
                cur = cur.args[0]
                continue
        break
    return cur, False


def _hazard_kind(
    expr: ast.expr, func: FunctionInfo, typer: _Typer, env: Dict[str, str]
) -> Optional[Tuple[str, str]]:
    """``(kind, described)`` when iterating ``expr`` is order-hazardous."""
    inner, is_sorted = _unwrap(expr)
    if is_sorted:
        return None
    if isinstance(inner, ast.Call):
        name = basename(inner.func)
        if name in _DICT_VIEWS and isinstance(inner.func, ast.Attribute):
            base_kind = typer.kind_of(inner.func.value, func, env)
            if base_kind == "dict":
                described = basename(inner.func.value) or "mapping"
                return "dict", f"{described}.{name}()"
            if base_kind is None and name in ("items", "values", "keys"):
                # `.items()` is almost always a mapping even when the base
                # type cannot be inferred.
                described = basename(inner.func.value) or "mapping"
                return ("dict", f"{described}.{name}()") if name == "items" else None
            return None
    kind = typer.kind_of(inner, func, env)
    if kind == "set":
        return "set", basename(inner) or "set expression"
    if kind == "dict":
        return "dict", basename(inner) or "mapping"
    return None


def _artefact_relevant(project: Project) -> Set[str]:
    """Functions that sink directly or whose return feeds a sink upstream."""
    relevant: Set[str] = set()
    sink_param_cache: Dict[str, Set[str]] = {}

    def sink_call_in(func: FunctionInfo) -> bool:
        for node in iter_own_nodes(func):
            if isinstance(node, ast.Call):
                if is_artefact_sink(node) is not None:
                    return True
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("write", "writelines")
                ):
                    return True
        return False

    for func in project.functions.values():
        if sink_call_in(func):
            relevant.add(func.qualname)

    # Return-flows-to-sink fixpoint: f is relevant when some caller uses
    # f(...)'s result inside a sink call / relevant return.
    site_owner: Dict[int, str] = {}
    for caller, sites in project.calls_by_caller.items():
        for site in sites:
            site_owner[id(site.node)] = caller

    changed = True
    rounds = 0
    while changed and rounds < 12:
        changed = False
        rounds += 1
        for caller_qual, sites in project.calls_by_caller.items():
            caller = project.function(caller_qual)
            if caller is None:
                continue
            assignments = local_name_assignments(caller)
            # Expressions in `caller` whose contents reach a sink.
            sink_exprs: List[ast.expr] = []
            for node in iter_own_nodes(caller):
                if isinstance(node, ast.Call) and is_artefact_sink(node) is not None:
                    sink_exprs.extend(list(node.args) + [kw.value for kw in node.keywords])
                elif (
                    isinstance(node, ast.Return)
                    and node.value is not None
                    and caller_qual in relevant
                ):
                    sink_exprs.append(node.value)
            if not sink_exprs:
                continue
            # Names referenced by sink expressions (one aliasing hop).
            sunk_names: Set[str] = set()
            for expr in sink_exprs:
                for sub in ast.walk(expr):
                    if isinstance(sub, ast.Name):
                        sunk_names.add(sub.id)
            for site in sites:
                if not site.callees:
                    continue
                in_sink = any(
                    any(sub is site.node for sub in ast.walk(expr))
                    for expr in sink_exprs
                )
                if not in_sink:
                    # assigned to a name later used in a sink expression?
                    for name, value in assignments.items():
                        if value is site.node and name in sunk_names:
                            in_sink = True
                            break
                if not in_sink:
                    continue
                for callee in site.callees:
                    if callee not in relevant and callee in project.functions:
                        relevant.add(callee)
                        changed = True
    return relevant


def check_iteration_order(project: Project) -> List[FlowFinding]:
    """QA-F003: hazardous dict/set iteration in artefact-relevant code."""
    typer = _Typer(project)
    typer.compute()
    relevant = _artefact_relevant(project)
    findings: List[FlowFinding] = []
    for func in project.functions.values():
        env = typer._locals(func)
        func_relevant = func.qualname in relevant
        for iterable in _iter_iterables(func):
            hazard = _hazard_kind(iterable, func, typer, env)
            if hazard is None:
                continue
            kind, described = hazard
            if kind == "dict" and not func_relevant:
                continue  # insertion-ordered iteration off the artefact path
            if kind == "set" and not func_relevant:
                # A set iteration is only deterministic per-process; still,
                # without an artefact consumer it cannot corrupt outputs.
                continue
            noun = "set" if kind == "set" else "dict"
            findings.append(
                FlowFinding(
                    path=func.path,
                    line=iterable.lineno,
                    col=iterable.col_offset,
                    code="QA-F003",
                    message=(
                        f"iteration over {noun} `{described}` in "
                        f"`{func.qualname}` feeds an artefact sink without "
                        "a sorted key: output order depends on "
                        + ("hash order" if kind == "set" else "insertion history")
                    ),
                    symbol=func.qualname,
                )
            )
    unique: Dict[Tuple[str, int, int], FlowFinding] = {}
    for f in findings:
        unique.setdefault((f.path, f.line, f.col), f)
    return sorted(unique.values(), key=FlowFinding.sort_key)
