"""Project-wide module and call-graph construction for ``repro check``.

The per-file linter (:mod:`repro.qa.lint`) sees one AST at a time; every
``QA-F`` rule needs to see *across* files: which function calls which, with
what arguments, and what flows back.  This module builds that picture:

* **Modules** - every ``.py`` file under the analyzed roots is parsed once
  and given a dotted module name derived from its package layout
  (``src/repro/tcp/fluid.py`` -> ``repro.tcp.fluid``).
* **Definitions** - module-level functions, class methods and nested
  functions are collected with stable qualified names
  (``repro.tcp.fluid.FluidNetwork.activate``); classes record their bases,
  ``__slots__`` declaration and method table.
* **Imports** - ``import a.b as c`` / ``from .x import y`` bindings are
  resolved (including relative imports) so call targets can be looked up
  through aliases.
* **Calls** - every :class:`ast.Call` is resolved to candidate callees:
  exactly for module-scope names and module-attribute chains, by class
  lookup for ``self.method(...)``, and by *conservative name matching* for
  other ``obj.method(...)`` sites (every known method of that name is a
  candidate).  Name matching over-approximates the true graph, which is the
  right bias for a checker: it may follow impossible edges but never misses
  a real one.

The graph is deliberately flow-insensitive and type-free - no inference
engine, no third-party dependencies - because the downstream passes only
need reachability and argument/parameter correspondence, not full types.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.qa.files import iter_python_files, read_source

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "build_project",
    "dotted_name",
    "module_name_for",
]

#: Containers considered mutable when bound at module scope (QA-F004).
_MUTABLE_CTORS = ("list", "dict", "set", "deque", "defaultdict", "Counter", "OrderedDict")


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def module_name_for(path: str) -> str:
    """Dotted module name for ``path``, derived from ``__init__.py`` layout.

    Walks up from the file while each enclosing directory is a package
    (contains ``__init__.py``); the chain of package directories plus the
    file stem is the module name.  A file outside any package is just its
    stem, so ad-hoc fixture trees analyze fine.
    """
    p = Path(path).resolve()
    parts: List[str] = []
    if p.stem != "__init__":
        parts.append(p.stem)
    d = p.parent
    while (d / "__init__.py").exists():
        parts.append(d.name)
        parent = d.parent
        if parent == d:  # filesystem root; cannot recurse further
            break
        d = parent
    return ".".join(reversed(parts)) if parts else p.stem


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    name: str
    path: str
    lineno: int
    node: ast.AST = field(repr=False, compare=False)
    #: Positional-or-keyword parameter names, in order (incl. pos-only).
    params: Tuple[str, ...] = ()
    #: Keyword-only parameter names.
    kwonly: Tuple[str, ...] = ()
    #: Parameter name -> default kind: "none", "literal", "expr".
    defaults: Dict[str, str] = field(default_factory=dict, compare=False)
    #: Qualified name of the owning class for methods, else ``None``.
    cls: Optional[str] = None
    #: True for functions nested inside another function body.
    nested: bool = False

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    def call_params(self) -> Tuple[str, ...]:
        """Parameter names as seen by a caller (``self``/``cls`` stripped)."""
        if self.is_method and self.params and self.params[0] in ("self", "cls"):
            return self.params[1:]
        return self.params


@dataclass(frozen=True)
class ClassInfo:
    """One class definition."""

    qualname: str
    module: str
    name: str
    path: str
    lineno: int
    node: ast.ClassDef = field(repr=False, compare=False)
    #: Dotted base-class names as written (best effort).
    bases: Tuple[str, ...] = ()
    #: Method name -> qualified name.
    methods: Dict[str, str] = field(default_factory=dict, compare=False)
    has_slots: bool = False
    #: True when defined inside a function body (unpicklable by reference).
    nested: bool = False


@dataclass
class ModuleInfo:
    """One parsed source module."""

    name: str
    path: str
    tree: ast.Module = field(repr=False)
    source: str = field(repr=False)
    #: Local alias -> dotted target ("np" -> "numpy",
    #: "SeedBank" -> "repro.util.rng.SeedBank").
    imports: Dict[str, str] = field(default_factory=dict)
    #: Module-level function name -> qualified name.
    functions: Dict[str, str] = field(default_factory=dict)
    #: Module-level class name -> qualified name.
    classes: Dict[str, str] = field(default_factory=dict)
    #: Module-level names bound to mutable containers -> def line.
    mutable_globals: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One resolved call expression."""

    caller: str
    path: str
    line: int
    col: int
    node: ast.Call = field(repr=False, compare=False)
    #: Candidate callee qualified names (empty when unresolved).
    callees: Tuple[str, ...] = ()
    #: "direct" | "method" | "name-match" | "constructor".
    kind: str = "direct"
    #: The call expression's dotted name as written, if any.
    written: Optional[str] = None


class Project:
    """The whole-program view the ``QA-F`` passes run over."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.calls_by_caller: Dict[str, List[CallSite]] = {}
        self.callers_of: Dict[str, List[CallSite]] = {}
        #: method name -> qualnames of every class method with that name.
        self._method_index: Dict[str, List[str]] = {}

    # -- construction helpers ------------------------------------------- #
    def _add_function(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info

    def _add_class(self, info: ClassInfo) -> None:
        self.classes[info.qualname] = info

    def _index_methods(self) -> None:
        self._method_index.clear()
        for cls in self.classes.values():
            for mname, qual in cls.methods.items():
                self._method_index.setdefault(mname, []).append(qual)
        for quals in self._method_index.values():
            quals.sort()

    # -- queries --------------------------------------------------------- #
    def methods_named(self, name: str) -> Tuple[str, ...]:
        """Every known class method with basename ``name``."""
        return tuple(self._method_index.get(name, ()))

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def calls_in(self, qualname: str) -> List[CallSite]:
        return self.calls_by_caller.get(qualname, [])

    def callers(self, qualname: str) -> List[CallSite]:
        return self.callers_of.get(qualname, [])

    def class_of_method(self, qualname: str) -> Optional[ClassInfo]:
        info = self.functions.get(qualname)
        if info is None or info.cls is None:
            return None
        return self.classes.get(info.cls)

    def resolve_in_module(self, module: ModuleInfo, name: str) -> Optional[str]:
        """Resolve a bare name in module scope to a known qualname."""
        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return module.classes[name]
        target = module.imports.get(name)
        if target is None:
            return None
        if target in self.functions or target in self.classes:
            return target
        return None

    def reachable_from(self, entries: Iterable[str]) -> Set[str]:
        """Transitive closure of callees (and constructors) from ``entries``."""
        seen: Set[str] = set()
        stack = [e for e in entries if e in self.functions or e in self.classes]
        while stack:
            cur = stack.pop()
            if cur in seen:
                continue
            seen.add(cur)
            for site in self.calls_in(cur):
                for callee in site.callees:
                    if callee not in seen:
                        stack.append(callee)
            cls = self.classes.get(cur)
            if cls is not None:
                for qual in cls.methods.values():
                    if qual not in seen:
                        stack.append(qual)
        return seen

    def entry_points(self) -> Tuple[str, ...]:
        """Study/CLI entry points for reachability filters.

        CLI command handlers, ``main`` functions, study ``run*`` methods,
        the campaign executor and worker bootstraps.  When the analyzed
        tree contains none of these (e.g. a test fixture package), every
        module-level function is treated as an entry point so the passes
        still have a root set.
        """
        entries: List[str] = []
        for info in self.functions.values():
            base = info.name
            mod_tail = info.module.rsplit(".", 1)[-1]
            if mod_tail in ("cli", "__main__") and not info.nested:
                entries.append(info.qualname)
            elif base in ("main", "execute_plan", "run_unit", "_worker_main"):
                entries.append(info.qualname)
            elif base.startswith("_cmd_"):
                entries.append(info.qualname)
            elif info.cls is not None and base.startswith("run"):
                cls = self.classes.get(info.cls)
                if cls is not None and cls.name.endswith("Study"):
                    entries.append(info.qualname)
        if not entries:
            entries = [
                info.qualname
                for info in self.functions.values()
                if info.cls is None and not info.nested
            ]
        return tuple(sorted(set(entries)))


# --------------------------------------------------------------------------- #
# per-module collection
# --------------------------------------------------------------------------- #
def _default_kind(node: Optional[ast.expr]) -> str:
    if node is None:
        return "required"
    if isinstance(node, ast.Constant) and node.value is None:
        return "none"
    if isinstance(node, ast.Constant):
        return "literal"
    return "expr"


def _param_defaults(args: ast.arguments) -> Dict[str, str]:
    out: Dict[str, str] = {}
    positional = [a.arg for a in args.posonlyargs + args.args]
    defaults: List[Optional[ast.expr]] = [None] * (
        len(positional) - len(args.defaults)
    ) + list(args.defaults)
    for name, default in zip(positional, defaults):
        out[name] = _default_kind(default)
    for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        out[arg.arg] = _default_kind(kw_default)
    return out


def _collect_imports(module: ModuleInfo) -> None:
    package = module.name.rsplit(".", 1)[0] if "." in module.name else ""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                module.imports[bound] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Resolve `from .x import y` against the module's package.
                # For a package __init__ the module name IS the package, so
                # one fewer component is dropped than for a regular module.
                anchor_parts = module.name.split(".")
                drop = (
                    node.level - 1
                    if module.path.endswith("__init__.py")
                    else node.level
                )
                anchor = anchor_parts[: max(len(anchor_parts) - drop, 0)]
                base = ".".join(anchor + ([base] if base else []))
            elif not base:
                base = package
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                module.imports[bound] = f"{base}.{alias.name}" if base else alias.name


def _has_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, ast.AnnAssign):
            targets = [stmt.target]
        for t in targets:
            if isinstance(t, ast.Name) and t.id == "__slots__":
                return True
    return False


def _is_mutable_ctor(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        written = dotted_name(value.func)
        if written is not None and written.rsplit(".", 1)[-1] in _MUTABLE_CTORS:
            return True
    return False


class _DefCollector(ast.NodeVisitor):
    """Collect function/class definitions with qualified names."""

    def __init__(self, project: Project, module: ModuleInfo):
        self.project = project
        self.module = module
        #: Stack of (qualname, kind) where kind is "module"|"class"|"function".
        self.stack: List[Tuple[str, str]] = [(module.name, "module")]

    def _qual(self, name: str) -> str:
        return f"{self.stack[-1][0]}.{name}"

    def _owner_class(self) -> Optional[str]:
        return self.stack[-1][0] if self.stack[-1][1] == "class" else None

    def _in_function(self) -> bool:
        return any(kind == "function" for _, kind in self.stack)

    def _visit_func(self, node: ast.AST, name: str, args: ast.arguments) -> None:
        qual = self._qual(name)
        cls = self._owner_class()
        info = FunctionInfo(
            qualname=qual,
            module=self.module.name,
            name=name,
            path=self.module.path,
            lineno=getattr(node, "lineno", 1),
            node=node,
            params=tuple(a.arg for a in args.posonlyargs + args.args),
            kwonly=tuple(a.arg for a in args.kwonlyargs),
            defaults=_param_defaults(args),
            cls=cls,
            nested=self._in_function(),
        )
        self.project._add_function(info)
        if self.stack[-1][1] == "module":
            self.module.functions[name] = qual
        if cls is not None:
            self.project.classes[cls].methods[name] = qual
        self.stack.append((qual, "function"))
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_func(node, node.name, node.args)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_func(node, node.name, node.args)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = self._qual(node.name)
        bases = tuple(b for b in (dotted_name(base) for base in node.bases) if b)
        info = ClassInfo(
            qualname=qual,
            module=self.module.name,
            name=node.name,
            path=self.module.path,
            lineno=node.lineno,
            node=node,
            bases=bases,
            methods={},
            has_slots=_has_slots(node),
            nested=self._in_function(),
        )
        self.project._add_class(info)
        if self.stack[-1][1] == "module":
            self.module.classes[node.name] = qual
        self.stack.append((qual, "class"))
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.stack.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.stack[-1][1] == "module" and _is_mutable_ctor(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.module.mutable_globals[target.id] = node.lineno
        self.generic_visit(node)


# --------------------------------------------------------------------------- #
# call resolution
# --------------------------------------------------------------------------- #
class _CallCollector(ast.NodeVisitor):
    """Resolve every call expression inside one function body."""

    def __init__(self, project: Project, module: ModuleInfo, func: FunctionInfo):
        self.project = project
        self.module = module
        self.func = func
        #: Names defined locally inside this function (nested defs).
        self.local_funcs: Dict[str, str] = {}
        node = func.node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_funcs[child.name] = f"{func.qualname}.{child.name}"

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested bodies are collected under their own FunctionInfo

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def visit_Call(self, node: ast.Call) -> None:
        site = self._resolve(node)
        self.project.calls_by_caller.setdefault(self.func.qualname, []).append(site)
        for callee in site.callees:
            self.project.callers_of.setdefault(callee, []).append(site)
        self.generic_visit(node)

    def _constructor_target(self, class_qual: str) -> Tuple[Tuple[str, ...], str]:
        cls = self.project.classes.get(class_qual)
        if cls is not None and "__init__" in cls.methods:
            return (cls.methods["__init__"],), "constructor"
        return (class_qual,), "constructor"

    def _resolve(self, node: ast.Call) -> CallSite:
        written = dotted_name(node.func)
        callees: Tuple[str, ...] = ()
        kind = "direct"
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.local_funcs:
                callees = (self.local_funcs[name],)
            else:
                resolved = self.project.resolve_in_module(self.module, name)
                if resolved is not None:
                    if resolved in self.project.classes:
                        callees, kind = self._constructor_target(resolved)
                    else:
                        callees = (resolved,)
        elif isinstance(func, ast.Attribute):
            callees, kind = self._resolve_attribute(func)
        return CallSite(
            caller=self.func.qualname,
            path=self.module.path,
            line=node.lineno,
            col=node.col_offset,
            node=node,
            callees=callees,
            kind=kind,
            written=written,
        )

    def _resolve_attribute(self, func: ast.Attribute) -> Tuple[Tuple[str, ...], str]:
        # 1. module-attribute chain: `alias.sub.f(...)`.
        written = dotted_name(func)
        if written is not None:
            head = written.split(".", 1)[0]
            target = self.module.imports.get(head)
            if target is not None:
                dotted = written.replace(head, target, 1)
                if dotted in self.project.functions:
                    return (dotted,), "direct"
                if dotted in self.project.classes:
                    return self._constructor_target(dotted)
        # 2. `self.method(...)`: own class, then declared bases.
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and self.func.cls is not None
        ):
            resolved = self._lookup_method(self.func.cls, func.attr, set())
            if resolved is not None:
                return (resolved,), "method"
        # 3. conservative name matching over every known method.
        matches = self.project.methods_named(func.attr)
        if matches:
            return matches, "name-match"
        return (), "direct"

    def _lookup_method(
        self, class_qual: str, name: str, seen: Set[str]
    ) -> Optional[str]:
        if class_qual in seen:
            return None
        seen.add(class_qual)
        cls = self.project.classes.get(class_qual)
        if cls is None:
            return None
        if name in cls.methods:
            return cls.methods[name]
        module = self.modules_of(cls.module)
        for base in cls.bases:
            base_qual: Optional[str] = None
            if module is not None:
                base_qual = self.project.resolve_in_module(module, base.split(".")[0])
                if base_qual is not None and "." in base:
                    base_qual = base_qual  # alias chains beyond one hop: skip
            if base_qual is None and base in self.project.classes:
                base_qual = base
            if base_qual is not None:
                found = self._lookup_method(base_qual, name, seen)
                if found is not None:
                    return found
        return None

    def modules_of(self, name: str) -> Optional[ModuleInfo]:
        return self.project.modules.get(name)


# --------------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------------- #
def build_project(paths: Sequence[str]) -> Project:
    """Parse every Python file under ``paths`` into a :class:`Project`."""
    project = Project()
    # Pass 1: parse + collect definitions and imports.
    for file_path in iter_python_files(paths):
        source = read_source(file_path)
        try:
            tree = ast.parse(source, filename=file_path)
        except SyntaxError:
            continue  # the per-file linter reports QA-E000 for these
        module = ModuleInfo(
            name=module_name_for(file_path),
            path=file_path,
            tree=tree,
            source=source,
        )
        project.modules[module.name] = module
        _collect_imports(module)
        _DefCollector(project, module).visit(tree)
    project._index_methods()
    # Pass 2: resolve calls, now that every definition is known.
    for module in project.modules.values():
        for qual, info in list(project.functions.items()):
            if info.module != module.name:
                continue
            collector = _CallCollector(project, module, info)
            for child in ast.iter_child_nodes(info.node):
                collector.visit(child)
    return project
