"""Determinism taint passes: QA-F001 (unseeded RNG) and QA-F002 (wall clock).

Both passes work on function *summaries* propagated over the project call
graph, which is what makes them see hazards the per-file linter cannot:

* **QA-F001** - a generator-construction site (``default_rng(seed)``,
  ``SeedSequence(seed)``, ``PCG64(seed)``, ``SeedBank(seed)``) whose seed is
  one of the enclosing function's parameters creates an *obligation*: every
  call path into that function must supply a seed-derived value.  The pass
  walks caller edges upward; a caller that omits the argument (with a
  ``None`` default) or passes a literal ``None`` completes an unseeded
  chain, which is reported at the construction site with the full call
  chain.  The per-file rule QA-D003 only sees the textually argless call.

* **QA-F002** - functions are summarized as *wall-clock returning* (their
  return value derives from ``time.time``/``datetime.now``/... directly or
  through callees) and parameters are summarized as *artefact-sink flowing*
  (the parameter reaches a ``TraceStore`` save, a record constructor, an
  obs span/event payload or a checkpoint/JSON dump, directly or through
  callees).  A call argument that is wall-clock derived and lands on a
  sink-flowing parameter - or sits directly in a sink call - is flagged.

Known false negatives (documented in DESIGN.md §10): values smuggled
through containers or object attributes, ``*args``/``**kwargs`` call sites,
and seed values produced by arbitrary arithmetic are not tracked.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.qa.flow._shared import (
    basename,
    iter_own_nodes,
    local_name_assignments,
    map_call_args,
    resolve_to_param,
)
from repro.qa.flow.callgraph import CallSite, FunctionInfo, Project, dotted_name
from repro.qa.flow.report import FlowFinding
from repro.qa.lint import _WALL_CLOCK_CALLS as WALL_CLOCK_CALLS

__all__ = ["check_unseeded_flow", "check_wall_clock_flow"]

#: Constructors that turn a seed into a random stream.
SEED_CONSUMERS: Set[str] = {"default_rng", "SeedSequence", "PCG64", "MT19937", "Philox", "SeedBank"}

#: Identifier tokens that mark a value as seed-derived (heuristic).
SEED_TOKENS: Set[str] = {"seed", "rng", "bank", "entropy", "generator"}

#: Callable basenames whose result is seed-derived.
SEED_PRODUCERS: Set[str] = {"derive_seed", "seed", "sequence", "child", "spawn"}

#: Longest caller chain followed before giving up (cycle/blowup guard).
MAX_CHAIN = 12


def _tokens(name: str) -> Set[str]:
    import re

    spaced = re.sub(r"(?<=[a-z0-9])(?=[A-Z])", "_", name)
    return {t.lower() for t in re.split(r"[^a-zA-Z0-9]+", spaced) if t}


# --------------------------------------------------------------------------- #
# QA-F001: unseeded RNG flows
# --------------------------------------------------------------------------- #
def _seed_argument(call: ast.Call) -> Optional[ast.expr]:
    """The seed argument of a generator-construction call, if present."""
    if call.args:
        first = call.args[0]
        if not isinstance(first, ast.Starred):
            return first
        return None
    for kw in call.keywords:
        if kw.arg in ("seed", "entropy", "root_seed"):
            return kw.value
    return None


def _is_seed_consumer(call: ast.Call) -> bool:
    name = basename(call.func)
    return name in SEED_CONSUMERS


def _classify_seed_expr(
    expr: ast.expr, func: FunctionInfo, assignments: Dict[str, ast.expr]
) -> Tuple[str, Optional[str]]:
    """Classify a seed-position expression.

    Returns ``(kind, param)`` where kind is one of ``"none"`` (literal
    ``None``), ``"seeded"``, ``"param"`` (a parameter of ``func``; the
    obligation moves to its callers), or ``"unknown"``.
    """
    if isinstance(expr, ast.Constant):
        return ("none", None) if expr.value is None else ("seeded", None)
    param = resolve_to_param(expr, func, assignments)
    if param is not None:
        return "param", param
    if isinstance(expr, ast.Call):
        name = basename(expr.func)
        if name in SEED_PRODUCERS or _is_seed_consumer(expr):
            return "seeded", None
        written = dotted_name(expr.func)
        if written is not None and SEED_TOKENS & _tokens(written):
            return "seeded", None
        return "unknown", None
    idents: Set[str] = set()
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name):
            idents |= _tokens(sub.id)
        elif isinstance(sub, ast.Attribute):
            idents |= _tokens(sub.attr)
    if SEED_TOKENS & idents:
        return "seeded", None
    return "unknown", None


def _propagation_sites(project: Project, func: FunctionInfo) -> List[CallSite]:
    """Caller sites precise enough to propagate an obligation through."""
    sites = []
    for site in project.callers(func.qualname):
        if site.kind in ("direct", "method", "constructor"):
            sites.append(site)
        elif site.kind == "name-match" and len(site.callees) == 1:
            sites.append(site)
    return sites


def check_unseeded_flow(project: Project) -> List[FlowFinding]:
    """QA-F001: report call chains that seed a generator from OS entropy."""
    findings: List[FlowFinding] = []
    reachable = project.reachable_from(project.entry_points())
    assignments_cache: Dict[str, Dict[str, ast.expr]] = {}

    def assigns(func: FunctionInfo) -> Dict[str, ast.expr]:
        if func.qualname not in assignments_cache:
            assignments_cache[func.qualname] = local_name_assignments(func)
        return assignments_cache[func.qualname]

    reported: Set[Tuple[str, int, int, str, int]] = set()
    for func in list(project.functions.values()):
        own_assigns = assigns(func)
        for node in iter_own_nodes(func):
            if not (isinstance(node, ast.Call) and _is_seed_consumer(node)):
                continue
            seed = _seed_argument(node)
            if seed is None:
                continue  # argless: per-file QA-D003 territory
            kind, param = _classify_seed_expr(seed, func, own_assigns)
            if kind != "param" or param is None:
                continue
            # The obligation: every caller chain must supply a seed for
            # `param`.  Walk caller edges breadth-first until each path is
            # discharged (seeded/unknown) or completes an unseeded chain.
            stack: List[Tuple[FunctionInfo, str, Tuple[str, ...]]] = [(func, param, ())]
            visited: Set[Tuple[str, str]] = set()
            while stack:
                cur, cur_param, chain = stack.pop()
                if (cur.qualname, cur_param) in visited or len(chain) >= MAX_CHAIN:
                    continue
                visited.add((cur.qualname, cur_param))
                for caller_site in _propagation_sites(project, cur):
                    caller = project.function(caller_site.caller)
                    if caller is None:
                        continue
                    mapping = map_call_args(caller_site.node, cur)
                    if mapping is None:
                        continue
                    hop = f"{caller_site.caller} ({caller_site.path}:{caller_site.line})"
                    why: Optional[str] = None
                    if cur_param not in mapping:
                        if cur.defaults.get(cur_param) == "none":
                            why = f"omits `{cur_param}` (defaults to None)"
                    else:
                        k, up = _classify_seed_expr(
                            mapping[cur_param], caller, assigns(caller)
                        )
                        if k == "none":
                            why = f"passes None for `{cur_param}`"
                        elif k == "param" and up is not None:
                            stack.append((caller, up, chain + (hop,)))
                    if why is None:
                        continue
                    if caller.qualname not in reachable:
                        continue
                    key = (
                        func.path,
                        node.lineno,
                        node.col_offset,
                        caller_site.caller,
                        caller_site.line,
                    )
                    if key in reported:
                        continue
                    reported.add(key)
                    ctor = basename(node.func) or "default_rng"
                    hops = (f"{func.qualname} ({func.path}:{node.lineno})",) + chain + (hop,)
                    findings.append(
                        FlowFinding(
                            path=func.path,
                            line=node.lineno,
                            col=node.col_offset,
                            code="QA-F001",
                            message=(
                                f"`{ctor}` in `{func.qualname}` is seeded from "
                                f"parameter `{param}`, but `{caller_site.caller}` "
                                f"({caller_site.path}:{caller_site.line}) {why}: "
                                "the stream falls back to OS entropy"
                            ),
                            symbol=func.qualname,
                            trace=tuple(reversed(hops)),
                        )
                    )
    findings.sort(key=FlowFinding.sort_key)
    return findings


# --------------------------------------------------------------------------- #
# QA-F002: wall-clock values reaching artefact sinks
# --------------------------------------------------------------------------- #
#: Record/plan constructors whose fields end up in saved artefacts.
ARTEFACT_CTORS: Set[str] = {
    "TransferRecord",
    "FailureRecord",
    "ObsRecord",
    "WorkUnit",
    "CampaignPlan",
}

#: Method/function basenames that persist their arguments.
ARTEFACT_CALLS: Set[str] = {
    "save_jsonl",
    "save_csv",
    "write_manifest",
    "span",
    "event",
    "dump",
    "dumps",
}


def is_artefact_sink(call: ast.Call) -> Optional[str]:
    """Name of the artefact sink this call writes to, or ``None``."""
    name = basename(call.func)
    if name in ARTEFACT_CTORS:
        return name
    if name in ARTEFACT_CALLS:
        if name in ("dump", "dumps"):
            written = dotted_name(call.func)
            if written not in ("json.dump", "json.dumps"):
                return None
        return name
    return None


class _WallSummary:
    """Fixpoint summaries for the wall-clock pass."""

    def __init__(self, project: Project):
        self.project = project
        self.returns_wall: Set[str] = set()
        self.sink_params: Dict[str, Set[str]] = {}
        self._site_index: Dict[int, CallSite] = {}
        for sites in project.calls_by_caller.values():
            for site in sites:
                self._site_index[id(site.node)] = site

    def site_for(self, call: ast.Call) -> Optional[CallSite]:
        return self._site_index.get(id(call))

    # -- wall-clock expression test -------------------------------------- #
    def expr_is_wall(
        self,
        expr: ast.expr,
        wall_locals: Set[str],
    ) -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                written = dotted_name(sub.func)
                if written is not None and written in WALL_CLOCK_CALLS:
                    return True
                site = self.site_for(sub)
                if site is not None and any(
                    c in self.returns_wall for c in site.callees
                ):
                    return True
            elif isinstance(sub, ast.Name) and sub.id in wall_locals:
                return True
        return False

    def wall_locals(self, func: FunctionInfo) -> Set[str]:
        """Local names assigned (transitively) from wall-clock expressions."""
        out: Set[str] = set()
        for _ in range(3):  # a couple of rounds settles realistic chains
            changed = False
            for node in iter_own_nodes(func):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and target.id not in out:
                        if self.expr_is_wall(node.value, out):
                            out.add(target.id)
                            changed = True
            if not changed:
                break
        return out

    # -- fixpoints -------------------------------------------------------- #
    def compute(self) -> None:
        funcs = list(self.project.functions.values())
        changed = True
        rounds = 0
        while changed and rounds < 10:
            changed = False
            rounds += 1
            for func in funcs:
                if func.qualname not in self.returns_wall and self._returns_wall(func):
                    self.returns_wall.add(func.qualname)
                    changed = True
        changed = True
        rounds = 0
        while changed and rounds < 10:
            changed = False
            rounds += 1
            for func in funcs:
                new = self._sink_params(func)
                if new != self.sink_params.get(func.qualname, set()):
                    self.sink_params[func.qualname] = new
                    changed = True

    def _returns_wall(self, func: FunctionInfo) -> bool:
        wall_locals = self.wall_locals(func)
        for node in iter_own_nodes(func):
            if isinstance(node, ast.Return) and node.value is not None:
                if self.expr_is_wall(node.value, wall_locals):
                    return True
        return False

    def _sink_params(self, func: FunctionInfo) -> Set[str]:
        params = set(func.params) | set(func.kwonly)
        if not params:
            return set()
        out: Set[str] = set(self.sink_params.get(func.qualname, set()))
        assignments = local_name_assignments(func)
        for node in iter_own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            exprs = list(node.args) + [kw.value for kw in node.keywords]
            if is_artefact_sink(node) is not None:
                for expr in exprs:
                    for sub in ast.walk(expr):
                        if isinstance(sub, ast.Name):
                            p = resolve_to_param(sub, func, assignments)
                            if p is not None:
                                out.add(p)
                continue
            site = self.site_for(node)
            if site is None or not site.callees:
                continue
            for callee_qual in site.callees:
                callee = self.project.function(callee_qual)
                if callee is None:
                    continue
                callee_sinks = self.sink_params.get(callee_qual)
                if not callee_sinks:
                    continue
                mapping = map_call_args(node, callee)
                if mapping is None:
                    continue
                for pname, expr in mapping.items():
                    if pname not in callee_sinks:
                        continue
                    for sub in ast.walk(expr):
                        if isinstance(sub, ast.Name):
                            p = resolve_to_param(sub, func, assignments)
                            if p is not None:
                                out.add(p)
        return out


def check_wall_clock_flow(project: Project) -> List[FlowFinding]:
    """QA-F002: wall-clock values crossing calls into artefact sinks."""
    summary = _WallSummary(project)
    summary.compute()
    findings: List[FlowFinding] = []
    for func in project.functions.values():
        wall_locals = summary.wall_locals(func)
        for node in iter_own_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            sink = is_artefact_sink(node)
            site = summary.site_for(node)
            exprs = list(node.args) + [kw.value for kw in node.keywords]
            if sink is not None:
                for expr in exprs:
                    if summary.expr_is_wall(expr, wall_locals):
                        findings.append(
                            FlowFinding(
                                path=func.path,
                                line=node.lineno,
                                col=node.col_offset,
                                code="QA-F002",
                                message=(
                                    f"wall-clock-derived value reaches artefact "
                                    f"sink `{sink}` in `{func.qualname}`: the "
                                    "artefact differs run to run"
                                ),
                                symbol=func.qualname,
                            )
                        )
                        break
                continue
            if site is None or not site.callees:
                continue
            for callee_qual in site.callees:
                callee = project.function(callee_qual)
                if callee is None:
                    continue
                callee_sinks = summary.sink_params.get(callee_qual)
                if not callee_sinks:
                    continue
                mapping = map_call_args(node, callee)
                if mapping is None:
                    continue
                hit = next(
                    (
                        pname
                        for pname, expr in mapping.items()
                        if pname in callee_sinks
                        and summary.expr_is_wall(expr, wall_locals)
                    ),
                    None,
                )
                if hit is not None:
                    findings.append(
                        FlowFinding(
                            path=func.path,
                            line=node.lineno,
                            col=node.col_offset,
                            code="QA-F002",
                            message=(
                                f"wall-clock-derived value passed to "
                                f"`{callee_qual}` parameter `{hit}`, which "
                                "flows into an artefact sink"
                            ),
                            symbol=func.qualname,
                            trace=(
                                f"{func.qualname} ({func.path}:{node.lineno})",
                                f"{callee_qual} ({callee.path}:{callee.lineno})",
                            ),
                        )
                    )
                    break
    # One finding per (path, line, code) is enough.
    unique: Dict[Tuple[str, int, str], FlowFinding] = {}
    for f in findings:
        unique.setdefault((f.path, f.line, f.code), f)
    out = sorted(unique.values(), key=FlowFinding.sort_key)
    return out
