"""Whole-program determinism & spawn-safety analysis (``repro check``).

Where :mod:`repro.qa.lint` checks one file at a time, this package builds a
project-wide call graph (:mod:`repro.qa.flow.callgraph`) and runs
interprocedural passes over it:

========  ==================================================================
QA-F001   unseeded-RNG flows: a seed parameter that can arrive as ``None``
          through some call chain into ``default_rng``/``SeedSequence``/
          ``PCG64``/``SeedBank``
QA-F002   wall-clock values crossing call boundaries into artefact sinks
          (saved stores, record constructors, obs payloads, JSON dumps)
QA-F003   dict/set iteration order reaching artefact sinks or WorkUnit plan
          construction without a sorted key
QA-F004   spawn-safety: unpicklable process payloads and module-global
          mutable state touched by worker-reachable code
QA-F005   mutable default arguments
========  ==================================================================

Entry point: :func:`analyze_paths` returns sorted, suppression-filtered
:class:`~repro.qa.flow.report.FlowFinding` objects; ``# qa: ignore[CODE]``
comments on the finding line are honoured exactly as for ``repro lint``
(shared parser in :mod:`repro.qa.files`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.qa.files import suppressed_codes_by_line
from repro.qa.flow.baseline import (
    Baseline,
    BaselineEntry,
    BaselineResult,
    write_baseline,
)
from repro.qa.flow.callgraph import Project, build_project
from repro.qa.flow.order import check_iteration_order
from repro.qa.flow.report import (
    FlowFinding,
    render_text,
    to_sarif,
    validate_sarif,
)
from repro.qa.flow.spawnsafe import check_mutable_defaults, check_spawn_safety
from repro.qa.flow.taint import check_unseeded_flow, check_wall_clock_flow

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineResult",
    "FlowFinding",
    "Project",
    "analyze_paths",
    "analyze_project",
    "build_project",
    "render_text",
    "to_sarif",
    "validate_sarif",
    "write_baseline",
]


def analyze_project(project: Project) -> List[FlowFinding]:
    """Run every QA-F pass over an already-built project."""
    findings: List[FlowFinding] = []
    findings.extend(check_unseeded_flow(project))
    findings.extend(check_wall_clock_flow(project))
    findings.extend(check_iteration_order(project))
    findings.extend(check_spawn_safety(project))
    findings.extend(check_mutable_defaults(project))

    # Honour line-scoped `# qa: ignore[CODE]` suppressions.
    suppressions: Dict[str, Dict[int, Set[str]]] = {}
    for module in project.modules.values():
        suppressions[module.path] = suppressed_codes_by_line(module.source)
    kept = [
        f
        for f in findings
        if f.code not in suppressions.get(f.path, {}).get(f.line, set())
    ]
    kept.sort(key=FlowFinding.sort_key)
    return kept


def analyze_paths(paths: Sequence[str]) -> List[FlowFinding]:
    """Build the project from ``paths`` and run every QA-F pass."""
    return analyze_project(build_project(paths))
