"""Finding model and renderers (text + SARIF 2.1) for ``repro check``.

SARIF output targets the OASIS SARIF 2.1.0 schema so findings can be
uploaded to code-scanning UIs.  The emitter writes the subset of the spec a
static analyzer needs - ``tool.driver.rules``, ``results`` with physical
locations, and ``codeFlows`` carrying the interprocedural chain that led to
each finding - and :func:`validate_sarif` structurally checks that subset
(the third-party ``jsonschema`` package is deliberately not required).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.qa.rules import RULES

__all__ = ["FlowFinding", "render_text", "to_sarif", "validate_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-check"


@dataclass(frozen=True)
class FlowFinding:
    """One whole-program finding.

    ``symbol`` is the qualified name of the function (or module) the finding
    is anchored in - baselines key on it, so findings survive line churn.
    ``trace`` carries the interprocedural chain as ``"qualname (path:line)"``
    hops, outermost call first.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    symbol: str
    trace: Tuple[str, ...] = field(default=())

    @property
    def hint(self) -> str:
        rule = RULES.get(self.code)
        return rule.hint if rule is not None else ""

    def format(self, *, hints: bool = True) -> str:
        """Render as ``path:line:col: CODE message`` plus chain and hint."""
        head = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        lines = [head]
        for i, hop in enumerate(self.trace):
            lines.append(f"    {'via:  ' if i else 'flow: '}{hop}")
        if hints and self.hint:
            lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)


def render_text(
    findings: Sequence[FlowFinding], *, hints: bool = True
) -> str:
    """Human-readable report, one block per finding."""
    return "\n".join(f.format(hints=hints) for f in findings)


# --------------------------------------------------------------------------- #
# SARIF 2.1
# --------------------------------------------------------------------------- #
def _uri(path: str) -> str:
    return path.replace("\\", "/")


def _sarif_rules(codes: Sequence[str]) -> List[Dict[str, Any]]:
    out: List[Dict[str, Any]] = []
    for code in codes:
        rule = RULES.get(code)
        if rule is None:
            out.append({"id": code, "shortDescription": {"text": code}})
            continue
        out.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.name},
                "fullDescription": {"text": rule.summary},
                "help": {"text": rule.hint},
                "defaultConfiguration": {"level": "warning"},
            }
        )
    return out


def _location(finding: FlowFinding) -> Dict[str, Any]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": _uri(finding.path)},
            "region": {
                "startLine": max(finding.line, 1),
                "startColumn": max(finding.col + 1, 1),
            },
        },
        "logicalLocations": [
            {"fullyQualifiedName": finding.symbol, "kind": "function"}
        ],
    }


def _code_flow(finding: FlowFinding) -> Dict[str, Any]:
    locations: List[Dict[str, Any]] = []
    for hop in finding.trace:
        # hop format: "qualname (path:line)"
        text = hop
        path, line = finding.path, finding.line
        if "(" in hop and hop.endswith(")"):
            loc = hop[hop.rfind("(") + 1 : -1]
            if ":" in loc:
                path, _, line_s = loc.rpartition(":")
                if line_s.isdigit():
                    line = int(line_s)
        locations.append(
            {
                "location": {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _uri(path)},
                        "region": {"startLine": max(line, 1)},
                    },
                    "message": {"text": text},
                }
            }
        )
    return {"threadFlows": [{"locations": locations}]}


def to_sarif(findings: Sequence[FlowFinding]) -> Dict[str, Any]:
    """Build a SARIF 2.1.0 log for ``findings``."""
    codes = sorted({f.code for f in findings} | {c for c in RULES if RULES[c].analyzer == "flow"})
    rule_index = {code: i for i, code in enumerate(codes)}
    results: List[Dict[str, Any]] = []
    for f in sorted(findings, key=FlowFinding.sort_key):
        result: Dict[str, Any] = {
            "ruleId": f.code,
            "ruleIndex": rule_index[f.code],
            "level": "warning",
            "message": {"text": f.message},
            "locations": [_location(f)],
        }
        if f.trace:
            result["codeFlows"] = [_code_flow(f)]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": "https://example.invalid/repro",
                        "rules": _sarif_rules(codes),
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def validate_sarif(doc: Any) -> List[str]:
    """Structurally validate the SARIF subset this tool emits.

    Returns a list of human-readable problems (empty = valid).  Checks the
    2.1.0 invariants code-scanning consumers rely on: version/schema, the
    tool driver with well-formed rules, and every result's ruleId/ruleIndex,
    message and physical locations.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("version") != SARIF_VERSION:
        errors.append(f"version must be {SARIF_VERSION!r}")
    if not isinstance(doc.get("$schema"), str):
        errors.append("$schema missing")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        return errors + ["runs must be a non-empty array"]
    for ri, run in enumerate(runs):
        if not isinstance(run, dict):
            errors.append(f"runs[{ri}] is not an object")
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
        if not isinstance(driver, dict) or not isinstance(driver.get("name"), str):
            errors.append(f"runs[{ri}].tool.driver.name missing")
            continue
        rules = driver.get("rules", [])
        if not isinstance(rules, list):
            errors.append(f"runs[{ri}] rules must be an array")
            rules = []
        ids: List[str] = []
        for si, rule in enumerate(rules):
            if not isinstance(rule, dict) or not isinstance(rule.get("id"), str):
                errors.append(f"runs[{ri}].rules[{si}].id missing")
                continue
            ids.append(rule["id"])
            short = rule.get("shortDescription")
            if not isinstance(short, dict) or not isinstance(short.get("text"), str):
                errors.append(f"runs[{ri}].rules[{si}].shortDescription.text missing")
        results = run.get("results")
        if not isinstance(results, list):
            errors.append(f"runs[{ri}].results must be an array")
            continue
        for xi, result in enumerate(results):
            where = f"runs[{ri}].results[{xi}]"
            if not isinstance(result, dict):
                errors.append(f"{where} is not an object")
                continue
            rule_id = result.get("ruleId")
            if not isinstance(rule_id, str):
                errors.append(f"{where}.ruleId missing")
            elif ids and rule_id not in ids:
                errors.append(f"{where}.ruleId {rule_id!r} not declared in rules")
            index = result.get("ruleIndex")
            if index is not None and (
                not isinstance(index, int)
                or index < 0
                or (ids and (index >= len(ids) or ids[index] != rule_id))
            ):
                errors.append(f"{where}.ruleIndex inconsistent with rules order")
            message = result.get("message")
            if not isinstance(message, dict) or not isinstance(message.get("text"), str):
                errors.append(f"{where}.message.text missing")
            locations = result.get("locations")
            if not isinstance(locations, list) or not locations:
                errors.append(f"{where}.locations must be a non-empty array")
                continue
            for li, loc in enumerate(locations):
                phys = loc.get("physicalLocation") if isinstance(loc, dict) else None
                if not isinstance(phys, dict):
                    errors.append(f"{where}.locations[{li}].physicalLocation missing")
                    continue
                art = phys.get("artifactLocation")
                if not isinstance(art, dict) or not isinstance(art.get("uri"), str):
                    errors.append(f"{where}.locations[{li}] artifact uri missing")
                region = phys.get("region")
                if region is not None:
                    start = region.get("startLine") if isinstance(region, dict) else None
                    if not isinstance(start, int) or start < 1:
                        errors.append(f"{where}.locations[{li}].region.startLine must be >= 1")
    return errors
