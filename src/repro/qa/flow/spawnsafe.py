"""Spawn-safety passes: QA-F004 (worker state) and QA-F005 (mutable defaults).

The campaign runner starts workers with the ``spawn`` context: a worker is
a fresh interpreter that re-imports modules and unpickles everything handed
to it.  Three classes of code break silently under that contract:

* **Unpicklable process payloads** - lambdas, functions/classes defined
  inside another function, generators and open handles cannot cross the
  boundary; ``Process(target=...)``/``args=...`` referencing them fails at
  start (or, worse, only on non-fork platforms).
* **Module-global mutable state touched by worker-reachable code** - a
  global dict/list mutated inside a worker is invisible to the parent and
  to sibling workers, so results depend on which process ran the unit.
  The pass walks the call graph from every spawn target and flags
  mutations (``global`` rebinding, ``g[...] = ...``, ``g.append/update``)
  of module-level mutable containers.
* **Unpicklable instance state** - classes whose ``__init__`` stores
  lambdas, open files, locks or generator objects produce instances that
  cannot be shipped to workers even though constructing them in the parent
  works fine.  Flagged when such a class's instances are passed as process
  args.

QA-F005 (mutable default arguments) rides along here because the shared
default is exactly the kind of cross-call state the spawn analysis exists
to rule out - and the fix (default to ``None``) is the same everywhere.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.qa.flow._shared import basename, iter_own_nodes, local_name_assignments
from repro.qa.flow.callgraph import ClassInfo, FunctionInfo, Project, dotted_name
from repro.qa.flow.report import FlowFinding

__all__ = ["check_spawn_safety", "check_mutable_defaults"]

#: Mutating method names on containers (conservative superset).
_MUTATORS: Set[str] = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
}

#: threading/socket primitives that never pickle.
_UNPICKLABLE_CTORS: Set[str] = {
    "Lock",
    "RLock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Barrier",
    "local",
    "socket",
    "Thread",
}


def _finding(
    func: FunctionInfo, node: ast.AST, message: str, trace: Tuple[str, ...] = ()
) -> FlowFinding:
    return FlowFinding(
        path=func.path,
        line=getattr(node, "lineno", func.lineno),
        col=getattr(node, "col_offset", 0),
        code="QA-F004",
        message=message,
        symbol=func.qualname,
        trace=trace,
    )


# --------------------------------------------------------------------------- #
# spawn sites
# --------------------------------------------------------------------------- #
def _is_process_ctor(call: ast.Call) -> bool:
    return basename(call.func) == "Process"


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _spawn_sites(project: Project) -> List[Tuple[FunctionInfo, ast.Call]]:
    sites: List[Tuple[FunctionInfo, ast.Call]] = []
    for func in project.functions.values():
        for node in iter_own_nodes(func):
            if isinstance(node, ast.Call) and _is_process_ctor(node):
                sites.append((func, node))
    return sites


def _resolve_target(
    project: Project, func: FunctionInfo, expr: ast.expr
) -> Optional[FunctionInfo]:
    """The FunctionInfo a ``target=`` expression names, if resolvable."""
    module = project.modules.get(func.module)
    if isinstance(expr, ast.Name):
        local = project.function(f"{func.qualname}.{expr.id}")
        if local is not None:
            return local
        if module is not None:
            qual = project.resolve_in_module(module, expr.id)
            if qual is not None:
                return project.function(qual)
    if isinstance(expr, ast.Attribute):
        written = dotted_name(expr)
        if written is not None and module is not None:
            head = written.split(".", 1)[0]
            target = module.imports.get(head)
            if target is not None:
                return project.function(written.replace(head, target, 1))
    return None


# --------------------------------------------------------------------------- #
# worker-reachable global-state scan
# --------------------------------------------------------------------------- #
def _binding_names(target: ast.expr) -> Set[str]:
    """Names an assignment target *rebinds* (``x = ``, ``x, y = ``).

    ``x[k] = `` and ``x.attr = `` mutate the object ``x`` names without
    rebinding ``x`` itself, so their base names are NOT collected.
    """
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        out: Set[str] = set()
        for el in target.elts:
            out |= _binding_names(el)
        return out
    if isinstance(target, ast.Starred):
        return _binding_names(target.value)
    return set()


def _shadowed_names(func: FunctionInfo) -> Set[str]:
    """Names that are parameters or locally (re)bound in ``func``."""
    names: Set[str] = set(func.params) | set(func.kwonly)
    for node in iter_own_nodes(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                names |= _binding_names(target)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            names |= _binding_names(node.target)
    return names


def _global_mutations(
    project: Project, func: FunctionInfo
) -> List[Tuple[ast.AST, str]]:
    """(node, global-name) pairs where ``func`` mutates a module global."""
    module = project.modules.get(func.module)
    if module is None or not module.mutable_globals:
        return []
    declared_global: Set[str] = set()
    for node in iter_own_nodes(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
    shadowed = _shadowed_names(func) - declared_global
    hits: List[Tuple[ast.AST, str]] = []
    for node in iter_own_nodes(func):
        if isinstance(node, ast.Global):
            for name in node.names:
                if name in module.mutable_globals:
                    hits.append((node, name))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS and isinstance(node.func.value, ast.Name):
                name = node.func.value.id
                if name in module.mutable_globals and name not in shadowed:
                    hits.append((node, name))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    name = target.value.id
                    if name in module.mutable_globals and name not in shadowed:
                        hits.append((node, name))
    return hits


# --------------------------------------------------------------------------- #
# class picklability
# --------------------------------------------------------------------------- #
def _unpicklable_assignments(cls: ClassInfo) -> List[Tuple[ast.AST, str]]:
    """(node, reason) pairs for members that cannot cross a spawn boundary."""
    hits: List[Tuple[ast.AST, str]] = []

    def classify(value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.GeneratorExp):
            return "a generator"
        if isinstance(value, ast.Call):
            name = basename(value.func)
            if name == "open":
                return "an open file handle"
            if name in _UNPICKLABLE_CTORS:
                return f"a {name}() object"
        return None

    for stmt in ast.walk(cls.node):
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                is_member = (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ) or isinstance(target, ast.Name)
                if is_member:
                    reason = classify(stmt.value)
                    if reason is not None:
                        hits.append((stmt, reason))
    return hits


def _classes_in_args(
    project: Project, func: FunctionInfo, args_expr: ast.expr
) -> List[Tuple[ClassInfo, ast.AST]]:
    """Classes whose instances are shipped in a ``Process(args=...)`` tuple."""
    module = project.modules.get(func.module)
    assignments = local_name_assignments(func)
    out: List[Tuple[ClassInfo, ast.AST]] = []
    elements: Sequence[ast.expr]
    if isinstance(args_expr, (ast.Tuple, ast.List)):
        elements = args_expr.elts
    else:
        elements = [args_expr]

    def class_of_call(call: ast.Call) -> Optional[ClassInfo]:
        if module is None:
            return None
        name = basename(call.func)
        if name is None:
            return None
        qual = project.resolve_in_module(module, name)
        if qual is not None and qual in project.classes:
            return project.classes[qual]
        local_cls = project.classes.get(f"{func.qualname}.{name}")
        return local_cls

    for el in elements:
        expr: Optional[ast.expr] = el
        if isinstance(el, ast.Name):
            expr = assignments.get(el.id)
        if isinstance(expr, ast.Call):
            cls = class_of_call(expr)
            if cls is not None:
                out.append((cls, el))
    return out


# --------------------------------------------------------------------------- #
# the passes
# --------------------------------------------------------------------------- #
def check_spawn_safety(project: Project) -> List[FlowFinding]:
    """QA-F004: state that does not survive the worker spawn boundary."""
    findings: List[FlowFinding] = []
    worker_roots: List[Tuple[FunctionInfo, FunctionInfo]] = []  # (site owner, root)

    for func, call in _spawn_sites(project):
        target = _keyword(call, "target") or (call.args[0] if call.args else None)
        args_expr = _keyword(call, "args")
        if isinstance(target, ast.Lambda):
            findings.append(
                _finding(
                    func,
                    target,
                    "Process target is a lambda: not picklable under the "
                    "spawn start method",
                )
            )
        elif target is not None:
            resolved = _resolve_target(project, func, target)
            if resolved is not None:
                if resolved.nested:
                    findings.append(
                        _finding(
                            func,
                            target,
                            f"Process target `{resolved.qualname}` is defined "
                            "inside a function: not picklable under spawn",
                        )
                    )
                else:
                    worker_roots.append((func, resolved))
        if args_expr is not None:
            elements = (
                args_expr.elts
                if isinstance(args_expr, (ast.Tuple, ast.List))
                else [args_expr]
            )
            for el in elements:
                if isinstance(el, ast.Lambda):
                    findings.append(
                        _finding(
                            func,
                            el,
                            "Process args contain a lambda: not picklable "
                            "under spawn",
                        )
                    )
                elif isinstance(el, ast.GeneratorExp):
                    findings.append(
                        _finding(
                            func,
                            el,
                            "Process args contain a generator: not picklable",
                        )
                    )
            for cls, where in _classes_in_args(project, func, args_expr):
                if cls.nested:
                    findings.append(
                        _finding(
                            func,
                            where,
                            f"instance of `{cls.qualname}` (a class defined "
                            "inside a function) shipped to a worker: not "
                            "picklable under spawn",
                        )
                    )
                for node, reason in _unpicklable_assignments(cls):
                    findings.append(
                        _finding(
                            func,
                            where,
                            f"instance of `{cls.qualname}` shipped to a worker "
                            f"holds {reason} "
                            f"({cls.path}:{getattr(node, 'lineno', cls.lineno)}): "
                            "not picklable under spawn",
                            trace=(
                                f"{func.qualname} ({func.path}:{getattr(where, 'lineno', func.lineno)})",
                                f"{cls.qualname} ({cls.path}:{getattr(node, 'lineno', cls.lineno)})",
                            ),
                        )
                    )

    # Worker-reachable functions must not mutate module-global mutables.
    roots = {root.qualname: owner for owner, root in worker_roots}
    if roots:
        reachable = project.reachable_from(roots.keys())
        for qual in sorted(reachable):
            worker_func = project.function(qual)
            if worker_func is None:
                continue
            for node, name in _global_mutations(project, worker_func):
                findings.append(
                    FlowFinding(
                        path=worker_func.path,
                        line=getattr(node, "lineno", worker_func.lineno),
                        col=getattr(node, "col_offset", 0),
                        code="QA-F004",
                        message=(
                            f"`{worker_func.qualname}` mutates module-global "
                            f"`{name}` and is reachable from a spawned worker "
                            "entry point: the mutation is lost at the process "
                            "boundary"
                        ),
                        symbol=worker_func.qualname,
                    )
                )
    unique: Dict[Tuple[str, int, int, str], FlowFinding] = {}
    for f in findings:
        unique.setdefault((f.path, f.line, f.col, f.message), f)
    return sorted(unique.values(), key=FlowFinding.sort_key)


def check_mutable_defaults(project: Project) -> List[FlowFinding]:
    """QA-F005: mutable default arguments anywhere in the analyzed tree."""
    findings: List[FlowFinding] = []
    for func in project.functions.values():
        node = func.node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        defaults: List[Optional[ast.expr]] = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if default is None:
                continue
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and basename(default.func) in ("list", "dict", "set", "bytearray")
            )
            if mutable:
                findings.append(
                    FlowFinding(
                        path=func.path,
                        line=default.lineno,
                        col=default.col_offset,
                        code="QA-F005",
                        message=(
                            f"mutable default argument in `{func.qualname}`: "
                            "evaluated once at def time and shared by every call"
                        ),
                        symbol=func.qualname,
                    )
                )
    return sorted(findings, key=FlowFinding.sort_key)
