"""The indirect-routing transfer session: probe, decide, fetch.

:class:`TransferSession` implements the paper's full client behaviour for
one download of an ``n``-byte file:

1. build the direct path and the candidate indirect paths offered by the
   selection policy;
2. race HTTP range probes for the first ``x`` bytes over all of them
   (:mod:`repro.core.probe`);
3. fetch the remaining ``n - x`` bytes over the winning path;
4. report client-observed timings and throughputs.

Two throughput views are recorded, because the paper uses both:

``end_to_end_throughput``
    ``n / (total time including the probe phase)`` - what the selecting
    client actually experienced.
``transfer_throughput``
    The bulk (remainder) phase throughput - the "throughput of the selected
    path", the quantity the paper's improvement statistics compare against
    the direct control client (probe overhead excluded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.probe import (
    DEFAULT_PROBE_BYTES,
    ProbeEngine,
    ProbeMode,
    ProbeOutcome,
)
from repro.http.messages import ByteRange, HttpRequest
from repro.http.transfer import TcpParams, issue_download
from repro.overlay.paths import OverlayPath, OverlayPathBuilder
from repro.tcp.fluid import FluidNetwork

__all__ = ["SessionConfig", "SessionResult", "TransferSession"]


@dataclass(frozen=True)
class SessionConfig:
    """Client-side knobs of the selection mechanism.

    ``probe_noise_sigma`` models measurement jitter: sequential selection
    ranks candidates by ``true throughput x lognormal(0, sigma)``.  Zero
    (the default) makes selection deterministic; ~0.15 matches the
    estimation error real 100 KB probes exhibit and yields the paper's
    imperfect utilisation/improvement correlation (Table III).
    """

    probe_bytes: float = DEFAULT_PROBE_BYTES
    probe_mode: ProbeMode = ProbeMode.CONCURRENT
    tcp: TcpParams = TcpParams()
    probe_noise_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.probe_bytes <= 0:
            raise ValueError(f"probe_bytes must be positive, got {self.probe_bytes}")
        if self.probe_noise_sigma < 0.0:
            raise ValueError(
                f"probe_noise_sigma must be >= 0, got {self.probe_noise_sigma}"
            )


@dataclass
class SessionResult:
    """Everything observed about one download."""

    client: str
    server: str
    resource: str
    size: float
    offered: Tuple[str, ...]
    selected_via: Optional[str]
    requested_at: float
    completed_at: float
    probe: Optional[ProbeOutcome] = None
    remainder_started_at: Optional[float] = None

    @property
    def used_indirect(self) -> bool:
        """True when the transfer rode an indirect path."""
        return self.selected_via is not None

    @property
    def duration(self) -> float:
        """Total request-to-last-byte time, probe phase included."""
        return self.completed_at - self.requested_at

    @property
    def end_to_end_throughput(self) -> float:
        """Whole-session throughput in bytes/second (probe included)."""
        if self.duration <= 0.0:
            raise ValueError("session has non-positive duration")
        return self.size / self.duration

    @property
    def transfer_throughput(self) -> float:
        """Bulk-phase throughput in bytes/second (the paper's metric).

        For sessions with a remainder phase this is
        ``(n - x) / (remainder time)``; for probe-free or probe-covers-file
        sessions it equals :attr:`end_to_end_throughput`.
        """
        if self.remainder_started_at is None or self.probe is None:
            return self.end_to_end_throughput
        bulk_bytes = self.size - min(self.probe.probe_bytes, self.size)
        bulk_time = self.completed_at - self.remainder_started_at
        if bulk_time <= 0.0 or bulk_bytes <= 0.0:
            return self.end_to_end_throughput
        return bulk_bytes / bulk_time

    @property
    def probe_overhead_seconds(self) -> float:
        """Wall time spent in the probe phase (0 for probe-free sessions)."""
        return self.probe.overhead_seconds if self.probe is not None else 0.0


class TransferSession:
    """Runs complete selection-and-download sessions on one fluid network.

    Parameters
    ----------
    network:
        Transport engine (bound to a simulator).
    builder:
        Overlay path builder over the scenario topology.
    config:
        Client mechanism parameters.
    """

    def __init__(
        self,
        network: FluidNetwork,
        builder: OverlayPathBuilder,
        config: SessionConfig = SessionConfig(),
        *,
        rng=None,
    ):
        if config.probe_noise_sigma > 0.0 and rng is None:
            raise ValueError(
                "SessionConfig.probe_noise_sigma > 0 requires an rng "
                "(pass rng= to TransferSession or Scenario.universe)"
            )
        self._network = network
        self._builder = builder
        self._config = config
        self._probe_engine = ProbeEngine(
            network, tcp=config.tcp, noise_sigma=config.probe_noise_sigma, rng=rng
        )

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._network.sim.now

    # ------------------------------------------------------------------ #
    def download_direct(self, client: str, server: str, resource: str) -> SessionResult:
        """The control client: one full GET over the direct path."""
        path = self._builder.direct(client, server)
        return self._full_download(path, client, server, resource)

    def download_via(
        self, client: str, server: str, resource: str, relay: Optional[str]
    ) -> SessionResult:
        """A probe-free full download over an externally chosen path.

        This is how a RON-style client operates: the routing decision comes
        from background monitoring state, not a per-transfer probe race.
        ``relay=None`` fetches over the direct path.
        """
        if relay is None:
            return self.download_direct(client, server, resource)
        path = self._builder.indirect(client, relay, server)
        return self._full_download(path, client, server, resource)

    def download(
        self,
        client: str,
        server: str,
        resource: str,
        relays: Sequence[str],
    ) -> SessionResult:
        """One selection session: probe direct + ``relays``, fetch remainder.

        With an empty ``relays`` the session degenerates to a plain direct
        download (no probe phase, matching the control client).
        """
        if not relays:
            return self.download_direct(client, server, resource)
        direct = self._builder.direct(client, server)
        candidates: List[OverlayPath] = [direct] + [
            self._builder.indirect(client, relay, server) for relay in relays
        ]
        size = float(direct.server.resource_size(resource))
        requested_at = self.now

        outcome = self._probe_engine.run(
            candidates,
            resource,
            probe_bytes=self._config.probe_bytes,
            mode=self._config.probe_mode,
        )
        sanitizer = self._network.sim.sanitizer
        if sanitizer is not None:
            sanitizer.check_probe_outcome(outcome, [p.label for p in candidates])
        winner = outcome.winner
        x = min(self._config.probe_bytes, size)

        if x >= size:
            # The probe already fetched the whole file over the winner.
            return self._checked(SessionResult(
                client=client,
                server=server,
                resource=resource,
                size=size,
                offered=tuple(relays),
                selected_via=winner.via,
                requested_at=requested_at,
                completed_at=self.now,
                probe=outcome,
            ))

        remainder_started_at = self.now
        request = HttpRequest(
            host=winner.server.name,
            path=resource,
            byte_range=ByteRange.suffix_from(int(x)),
            via=winner.via,
        )
        transfer = issue_download(
            self._network,
            winner.route,
            winner.server,
            request,
            proxy=winner.proxy,
            tcp=self._config.tcp,
            name=f"remainder:{winner.label}",
        )
        self._network.run_to_completion(transfer.flow)

        return self._checked(SessionResult(
            client=client,
            server=server,
            resource=resource,
            size=size,
            offered=tuple(relays),
            selected_via=winner.via,
            requested_at=requested_at,
            completed_at=self.now,
            probe=outcome,
            remainder_started_at=remainder_started_at,
        ))

    # ------------------------------------------------------------------ #
    def _checked(self, result: SessionResult) -> SessionResult:
        """Run the sanitizer's session post-conditions when installed."""
        sanitizer = self._network.sim.sanitizer
        if sanitizer is not None:
            sanitizer.check_session_result(result)
        return result

    def _full_download(
        self, path: OverlayPath, client: str, server: str, resource: str
    ) -> SessionResult:
        size = float(path.server.resource_size(resource))
        requested_at = self.now
        request = HttpRequest(host=path.server.name, path=resource, via=path.via)
        transfer = issue_download(
            self._network,
            path.route,
            path.server,
            request,
            proxy=path.proxy,
            tcp=self._config.tcp,
            name=f"full:{path.label}",
        )
        self._network.run_to_completion(transfer.flow)
        return self._checked(SessionResult(
            client=client,
            server=server,
            resource=resource,
            size=size,
            offered=(),
            selected_via=path.via,
            requested_at=requested_at,
            completed_at=self.now,
        ))
