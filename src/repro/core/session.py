"""The indirect-routing transfer session: probe, decide, fetch.

:class:`TransferSession` implements the paper's full client behaviour for
one download of an ``n``-byte file:

1. build the direct path and the candidate indirect paths offered by the
   selection policy;
2. race HTTP range probes for the first ``x`` bytes over all of them
   (:mod:`repro.core.probe`);
3. fetch the remaining ``n - x`` bytes over the winning path;
4. report client-observed timings and throughputs.

Two throughput views are recorded, because the paper uses both:

``end_to_end_throughput``
    ``n / (total time including the probe phase)`` - what the selecting
    client actually experienced.
``transfer_throughput``
    The bulk (remainder) phase throughput - the "throughput of the selected
    path", the quantity the paper's improvement statistics compare against
    the direct control client (probe overhead excluded).

With a :class:`~repro.core.resilience.ResilienceConfig` opted in (see
``SessionConfig.resilience``), the session additionally implements the
resilient protocol layer: probe races carry a deadline, a stalled or dead
selected path triggers mid-transfer failover (an HTTP range request for the
remaining bytes over the probe runner-up, direct as last resort, then
deterministic exponential backoff + re-probe), and every session reports a
structured :class:`~repro.core.resilience.SessionOutcome` plus a recovery
timeline.  The default config reproduces the legacy protocol exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.probe import (
    DEFAULT_PROBE_BYTES,
    PathProbe,
    ProbeEngine,
    ProbeMode,
    ProbeOutcome,
    ProbeTimeout,
)
from repro.core.resilience import (
    RecoveryEvent,
    ResilienceConfig,
    SessionOutcome,
    StallWatchdog,
    advance_until_done,
)
from repro.http.messages import ByteRange, HttpRequest
from repro.http.transfer import HttpTransfer, TcpParams, issue_download
from repro.overlay.paths import OverlayPath, OverlayPathBuilder
from repro.tcp.fluid import FluidNetwork

__all__ = ["SessionConfig", "SessionResult", "TransferSession"]


@dataclass(frozen=True)
class SessionConfig:
    """Client-side knobs of the selection mechanism.

    ``probe_noise_sigma`` models measurement jitter: sequential selection
    ranks candidates by ``true throughput x lognormal(0, sigma)``.  Zero
    (the default) makes selection deterministic; ~0.15 matches the
    estimation error real 100 KB probes exhibit and yields the paper's
    imperfect utilisation/improvement correlation (Table III).

    ``resilience`` selects the protocol's robustness behaviour; the default
    :class:`~repro.core.resilience.ResilienceConfig` is byte-identical to
    the pre-resilience protocol (no deadlines, no failover).
    """

    probe_bytes: float = DEFAULT_PROBE_BYTES
    probe_mode: ProbeMode = ProbeMode.CONCURRENT
    tcp: TcpParams = TcpParams()
    probe_noise_sigma: float = 0.0
    resilience: ResilienceConfig = ResilienceConfig()

    def __post_init__(self) -> None:
        if self.probe_bytes <= 0:
            raise ValueError(f"probe_bytes must be positive, got {self.probe_bytes}")
        if self.probe_noise_sigma < 0.0:
            raise ValueError(
                f"probe_noise_sigma must be >= 0, got {self.probe_noise_sigma}"
            )
        if not isinstance(self.resilience, ResilienceConfig):
            raise TypeError(
                f"resilience must be a ResilienceConfig, got {type(self.resilience)!r}"
            )


@dataclass
class SessionResult:
    """Everything observed about one download.

    ``outcome`` distinguishes clean completions from recovered and aborted
    sessions; ``recovery_events`` is the session's recovery timeline (empty
    for clean completions) and ``bytes_received`` the payload actually
    delivered (``None`` means "all of ``size``", the only possibility for
    non-aborted sessions).
    """

    client: str
    server: str
    resource: str
    size: float
    offered: Tuple[str, ...]
    selected_via: Optional[str]
    requested_at: float
    completed_at: float
    probe: Optional[ProbeOutcome] = None
    remainder_started_at: Optional[float] = None
    outcome: SessionOutcome = SessionOutcome.COMPLETED
    recovery_events: Tuple[RecoveryEvent, ...] = ()
    bytes_received: Optional[float] = None

    @property
    def used_indirect(self) -> bool:
        """True when the transfer rode an indirect path."""
        return self.selected_via is not None

    @property
    def duration(self) -> float:
        """Total request-to-last-byte time, probe phase included."""
        return self.completed_at - self.requested_at

    @property
    def delivered(self) -> float:
        """Payload bytes the client actually received."""
        return self.size if self.bytes_received is None else self.bytes_received

    @property
    def end_to_end_throughput(self) -> float:
        """Whole-session throughput in bytes/second (probe included).

        Counts delivered bytes, so aborted sessions report their partial
        goodput.  A degenerate zero-duration (or negative-clock) session
        reports 0.0 rather than raising - such sessions delivered nothing
        in no time, and analysis code treats them as zero-throughput.
        """
        if self.duration <= 0.0:
            return 0.0
        return self.delivered / self.duration

    @property
    def transfer_throughput(self) -> float:
        """Bulk-phase throughput in bytes/second (the paper's metric).

        For sessions with a remainder phase this is
        ``(n - x) / (remainder time)``; for probe-free or probe-covers-file
        sessions it equals :attr:`end_to_end_throughput`.  Aborted sessions
        fall back to :attr:`end_to_end_throughput` as well (their partial
        goodput): a bulk phase that never finished has no faithful
        bulk-rate reading.
        """
        if (
            self.remainder_started_at is None
            or self.probe is None
            or self.outcome is SessionOutcome.ABORTED
        ):
            return self.end_to_end_throughput
        bulk_bytes = self.size - min(self.probe.probe_bytes, self.size)
        bulk_time = self.completed_at - self.remainder_started_at
        if bulk_time <= 0.0 or bulk_bytes <= 0.0:
            return self.end_to_end_throughput
        return bulk_bytes / bulk_time

    @property
    def probe_overhead_seconds(self) -> float:
        """Wall time spent in the probe phase (0 for probe-free sessions)."""
        return self.probe.overhead_seconds if self.probe is not None else 0.0


class TransferSession:
    """Runs complete selection-and-download sessions on one fluid network.

    Parameters
    ----------
    network:
        Transport engine (bound to a simulator).
    builder:
        Overlay path builder over the scenario topology.
    config:
        Client mechanism parameters.
    """

    def __init__(
        self,
        network: FluidNetwork,
        builder: OverlayPathBuilder,
        config: SessionConfig = SessionConfig(),
        *,
        rng=None,
    ):
        if config.probe_noise_sigma > 0.0 and rng is None:
            raise ValueError(
                "SessionConfig.probe_noise_sigma > 0 requires an rng "
                "(pass rng= to TransferSession or Scenario.universe)"
            )
        self._network = network
        self._builder = builder
        self._config = config
        self._probe_engine = ProbeEngine(
            network, tcp=config.tcp, noise_sigma=config.probe_noise_sigma, rng=rng
        )

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._network.sim.now

    # ------------------------------------------------------------------ #
    def download_direct(self, client: str, server: str, resource: str) -> SessionResult:
        """The control client: one full GET over the direct path."""
        path = self._builder.direct(client, server)
        return self._full_download(path, client, server, resource)

    def download_via(
        self, client: str, server: str, resource: str, relay: Optional[str]
    ) -> SessionResult:
        """A probe-free full download over an externally chosen path.

        This is how a RON-style client operates: the routing decision comes
        from background monitoring state, not a per-transfer probe race.
        ``relay=None`` fetches over the direct path.
        """
        if relay is None:
            return self.download_direct(client, server, resource)
        path = self._builder.indirect(client, relay, server)
        return self._full_download(path, client, server, resource)

    def download_striped(
        self,
        client: str,
        server: str,
        resource: str,
        relays: Sequence[str],
        stripe: "object" = None,
    ):
        """One mHTTP-style striped download over direct + ``relays``.

        The rival mechanism to :meth:`download`: instead of racing probes
        and committing to one winner, fixed-size blocks of the object are
        fetched over every path simultaneously (see :mod:`repro.stripe`).
        ``stripe`` is a :class:`~repro.stripe.blocks.StripeConfig`
        (defaulted when ``None``); TCP parameters and the transport engine
        are shared with this session.  Returns a
        :class:`~repro.stripe.session.StripeResult`.
        """
        from repro.stripe.blocks import StripeConfig
        from repro.stripe.session import StripedSession

        config = stripe if stripe is not None else StripeConfig()
        if not isinstance(config, StripeConfig):
            raise TypeError(
                f"stripe must be a StripeConfig, got {type(config)!r}"
            )
        striper = StripedSession(
            self._network, self._builder, config, tcp=self._config.tcp
        )
        return striper.download(client, server, resource, relays)

    def download(
        self,
        client: str,
        server: str,
        resource: str,
        relays: Sequence[str],
    ) -> SessionResult:
        """One selection session: probe direct + ``relays``, fetch remainder.

        With an empty ``relays`` the session degenerates to a plain direct
        download (no probe phase, matching the control client).  With
        resilience enabled, a timed-out probe race yields an ``ABORTED``
        result and a stalled bulk phase triggers mid-transfer failover.
        """
        if not relays:
            return self.download_direct(client, server, resource)
        direct = self._builder.direct(client, server)
        candidates: List[OverlayPath] = [direct] + [
            self._builder.indirect(client, relay, server) for relay in relays
        ]
        size = float(direct.server.resource_size(resource))
        requested_at = self.now
        res = self._config.resilience

        try:
            outcome = self._probe_engine.run(
                candidates,
                resource,
                probe_bytes=self._config.probe_bytes,
                mode=self._config.probe_mode,
                deadline=res.probe_deadline,
            )
        except ProbeTimeout as timeout:
            events = (
                RecoveryEvent(
                    time=timeout.timed_out_at,
                    kind="probe_timeout",
                    path="",
                    bytes_received=0.0,
                    detail=float(timeout.deadline),
                ),
                RecoveryEvent(
                    time=self.now, kind="abort", path="", bytes_received=0.0
                ),
            )
            return self._checked(SessionResult(
                client=client,
                server=server,
                resource=resource,
                size=size,
                offered=tuple(relays),
                selected_via=None,
                requested_at=requested_at,
                completed_at=self.now,
                outcome=SessionOutcome.ABORTED,
                recovery_events=events,
                bytes_received=0.0,
            ))
        sanitizer = self._network.sim.sanitizer
        if sanitizer is not None:
            sanitizer.check_probe_outcome(outcome, [p.label for p in candidates])
        winner = outcome.winner
        x = min(self._config.probe_bytes, size)

        if x >= size:
            # The probe already fetched the whole file over the winner.
            return self._checked(SessionResult(
                client=client,
                server=server,
                resource=resource,
                size=size,
                offered=tuple(relays),
                selected_via=winner.via,
                requested_at=requested_at,
                completed_at=self.now,
                probe=outcome,
            ))

        if res.failover:
            return self._resilient_remainder(
                client=client,
                server=server,
                resource=resource,
                size=size,
                relays=tuple(relays),
                candidates=candidates,
                requested_at=requested_at,
                first_outcome=outcome,
            )

        remainder_started_at = self.now
        request = HttpRequest(
            host=winner.server.name,
            path=resource,
            byte_range=ByteRange.suffix_from(int(x)),
            via=winner.via,
        )
        transfer = issue_download(
            self._network,
            winner.route,
            winner.server,
            request,
            proxy=winner.proxy,
            tcp=self._config.tcp,
            name=f"remainder:{winner.label}",
        )
        self._network.run_to_completion(transfer.flow)
        obs = self._network.sim.observer
        if obs is not None:
            obs.span(
                "transfer",
                f"remainder:{winner.label}",
                remainder_started_at,
                self.now,
                bytes=size - x,
                path=winner.label,
            )

        return self._checked(SessionResult(
            client=client,
            server=server,
            resource=resource,
            size=size,
            offered=tuple(relays),
            selected_via=winner.via,
            requested_at=requested_at,
            completed_at=self.now,
            probe=outcome,
            remainder_started_at=remainder_started_at,
        ))

    # ------------------------------------------------------------------ #
    # resilient bulk phase: watchdog + failover + backoff/re-probe
    # ------------------------------------------------------------------ #
    def _fetch_range(
        self, path: OverlayPath, resource: str, offset: int, size: float
    ) -> HttpTransfer:
        request = HttpRequest(
            host=path.server.name,
            path=resource,
            byte_range=ByteRange(offset, int(size) - 1),
            via=path.via,
        )
        return issue_download(
            self._network,
            path.route,
            path.server,
            request,
            proxy=path.proxy,
            tcp=self._config.tcp,
            name=f"remainder:{path.label}@{offset}",
        )

    def _resilient_remainder(
        self,
        *,
        client: str,
        server: str,
        resource: str,
        size: float,
        relays: Tuple[str, ...],
        candidates: List[OverlayPath],
        requested_at: float,
        first_outcome: ProbeOutcome,
    ) -> SessionResult:
        """Fetch the remaining bytes with stall failover (see module doc).

        State machine per attempt: fetch remaining range over the current
        path -> watch.  On stall: abort (keeping the delivered prefix, HTTP
        ranges resume exactly there), switch to the best remaining
        alternate from the last race (direct last); with alternates
        exhausted, wait out a deterministic exponential backoff and run a
        fresh probe race from the current offset (probe bytes are payload).
        Bounded by ``max_failovers``/``max_reprobes``/``transfer_deadline``.
        """
        res = self._config.resilience
        sim = self._network.sim
        deadline_at = (
            math.inf
            if res.transfer_deadline is None
            else requested_at + res.transfer_deadline
        )
        remainder_started_at = self.now
        offset = int(min(self._config.probe_bytes, size))
        current = first_outcome.winner
        expected = first_outcome.throughput_of(current.label) or 0.0
        alternates: List[PathProbe] = first_outcome.alternates()
        race = first_outcome
        watchdog = StallWatchdog(
            sim,
            stall_threshold=res.stall_threshold,
            check_interval=res.check_interval,
            grace_period=res.grace_period,
        )
        events: List[RecoveryEvent] = []
        failovers = 0
        reprobes = 0
        aborted = False

        obs = sim.observer
        while offset < size:
            attempt_started_at = self.now
            transfer = self._fetch_range(current, resource, offset, size)
            verdict = watchdog.watch(transfer, expected, deadline_at=deadline_at)
            if obs is not None:
                obs.span(
                    "transfer",
                    f"attempt:{current.label}",
                    attempt_started_at,
                    self.now,
                    path=current.label,
                    offset=offset,
                    stalled=verdict.stalled,
                    reason=verdict.reason,
                    delivered=float(transfer.flow.delivered),
                )
            if not verdict.stalled:
                offset = int(size)
                break
            transfer.abort(self._network)
            offset = min(offset + int(transfer.flow.delivered), int(size))
            events.append(RecoveryEvent(
                time=self.now,
                kind="stall",
                path=current.label,
                bytes_received=float(offset),
                detail=verdict.idle_seconds,
            ))
            if offset >= size:
                break
            if verdict.reason == "deadline" or failovers >= res.max_failovers:
                aborted = True
                break
            failovers += 1
            if alternates:
                nxt = alternates.pop(0)
                current = nxt.path
                expected = race.estimated_throughput(nxt)
                events.append(RecoveryEvent(
                    time=self.now,
                    kind="failover",
                    path=current.label,
                    bytes_received=float(offset),
                ))
                continue
            # Alternates exhausted: backoff, then a fresh race from here.
            if reprobes >= res.max_reprobes:
                aborted = True
                break
            wait = res.backoff_wait(reprobes)
            reprobes += 1
            events.append(RecoveryEvent(
                time=self.now,
                kind="backoff",
                path="",
                bytes_received=float(offset),
                detail=wait,
            ))
            sim.run(until=min(self.now + wait, deadline_at))
            if self.now >= deadline_at:
                aborted = True
                break
            probe_x = int(min(self._config.probe_bytes, size - offset))
            try:
                race = self._probe_engine.run(
                    candidates,
                    resource,
                    probe_bytes=probe_x,
                    mode=self._config.probe_mode,
                    offset=offset,
                    deadline=res.probe_deadline,
                )
            except ProbeTimeout as timeout:
                events.append(RecoveryEvent(
                    time=timeout.timed_out_at,
                    kind="probe_timeout",
                    path="",
                    bytes_received=float(offset),
                    detail=float(timeout.deadline),
                ))
                aborted = True
                break
            sanitizer = self._network.sim.sanitizer
            if sanitizer is not None:
                sanitizer.check_probe_outcome(race, [p.label for p in candidates])
            current = race.winner
            expected = race.throughput_of(current.label) or 0.0
            alternates = race.alternates()
            offset = min(offset + probe_x, int(size))
            events.append(RecoveryEvent(
                time=self.now,
                kind="reprobe",
                path=current.label,
                bytes_received=float(offset),
            ))

        if aborted:
            events.append(RecoveryEvent(
                time=self.now,
                kind="abort",
                path=current.label,
                bytes_received=float(offset),
            ))
            session_outcome = SessionOutcome.ABORTED
        elif events:
            session_outcome = SessionOutcome.FAILED_OVER
        else:
            session_outcome = SessionOutcome.COMPLETED

        return self._checked(SessionResult(
            client=client,
            server=server,
            resource=resource,
            size=size,
            offered=relays,
            selected_via=first_outcome.winner.via,
            requested_at=requested_at,
            completed_at=self.now,
            probe=first_outcome,
            remainder_started_at=remainder_started_at,
            outcome=session_outcome,
            recovery_events=tuple(events),
            bytes_received=float(offset) if aborted else None,
        ))

    # ------------------------------------------------------------------ #
    def _checked(self, result: SessionResult) -> SessionResult:
        """Run the sanitizer's session post-conditions when installed.

        Every session exits through here, so it is also the single place
        the session span, the recovery-event timeline and the outcome
        counters are emitted.
        """
        sanitizer = self._network.sim.sanitizer
        if sanitizer is not None:
            sanitizer.check_session_result(result)
        obs = self._network.sim.observer
        if obs is not None:
            obs.span(
                "session",
                f"{result.client}->{result.server}",
                result.requested_at,
                result.completed_at,
                outcome=result.outcome.value,
                via=result.selected_via,
                bytes=result.delivered,
            )
            obs.count("session.outcome." + result.outcome.value)
            if result.used_indirect:
                obs.count("session.indirect")
            for ev in result.recovery_events:
                obs.event(
                    "recovery",
                    ev.kind,
                    ev.time,
                    path=ev.path,
                    bytes=ev.bytes_received,
                    detail=ev.detail,
                )
                obs.count("recovery." + ev.kind)
        return result

    def _full_download(
        self, path: OverlayPath, client: str, server: str, resource: str
    ) -> SessionResult:
        size = float(path.server.resource_size(resource))
        requested_at = self.now
        request = HttpRequest(host=path.server.name, path=resource, via=path.via)
        transfer = issue_download(
            self._network,
            path.route,
            path.server,
            request,
            proxy=path.proxy,
            tcp=self._config.tcp,
            name=f"full:{path.label}",
        )
        deadline = self._config.resilience.transfer_deadline
        aborted = False
        if deadline is None:
            self._network.run_to_completion(transfer.flow)
        elif not advance_until_done(
            self._network.sim, transfer, requested_at + deadline
        ):
            # Deadline passed (or the path is provably dead forever):
            # bounded abort with whatever prefix arrived.
            transfer.abort(self._network)
            aborted = True
        received = float(transfer.flow.delivered)
        obs = self._network.sim.observer
        if obs is not None:
            obs.span(
                "transfer",
                f"full:{path.label}",
                requested_at,
                self.now,
                path=path.label,
                bytes=received,
                aborted=aborted,
            )
        return self._checked(SessionResult(
            client=client,
            server=server,
            resource=resource,
            size=size,
            offered=(),
            selected_via=path.via,
            requested_at=requested_at,
            completed_at=self.now,
            outcome=SessionOutcome.ABORTED if aborted else SessionOutcome.COMPLETED,
            recovery_events=(
                RecoveryEvent(
                    time=self.now,
                    kind="abort",
                    path=path.label,
                    bytes_received=received,
                ),
            ) if aborted else (),
            bytes_received=received if aborted else None,
        ))
