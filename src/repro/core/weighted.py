"""Utilisation-weighted relay sampling: the paper's §6 future work, built.

The paper observes (Table III) that relay utilisation - how often a relay is
chosen when offered - correlates with the improvement it delivers, and
suggests using utilisation "to weight the likelihood of a node appearing in
the random set [so] the better nodes will be chosen more often".

:class:`UtilizationWeightedPolicy` implements exactly that: it keeps
per-(client, relay) counters of *offers* and *wins* and samples each
transfer's candidate set without replacement with probability proportional
to a smoothed win rate.  Laplace smoothing (``alpha``/``beta``) keeps
never-offered relays explorable, so the policy is a bandit-flavoured
refinement of the uniform random set rather than a greedy lock-in.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.policy import SelectionPolicy
from repro.util.validation import check_positive

__all__ = ["UtilizationWeightedPolicy"]


class UtilizationWeightedPolicy(SelectionPolicy):
    """Sample ``k`` relays with probability proportional to smoothed win rate.

    Parameters
    ----------
    k:
        Candidate set size per transfer.
    alpha, beta:
        Laplace smoothing: weight = ``(wins + alpha) / (offers + beta)``.
        With no history every relay gets the same prior weight
        ``alpha / beta``.
    """

    def __init__(self, k: int, *, alpha: float = 1.0, beta: float = 2.0):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.alpha = check_positive(alpha, "alpha")
        self.beta = check_positive(beta, "beta")
        self._offers: Dict[Tuple[str, str], int] = defaultdict(int)
        self._wins: Dict[Tuple[str, str], int] = defaultdict(int)

    @property
    def name(self) -> str:
        return f"UtilizationWeighted(k={self.k})"

    # ------------------------------------------------------------------ #
    def weight(self, client: str, relay: str) -> float:
        """Current sampling weight of ``relay`` for ``client``."""
        key = (client, relay)
        return (self._wins[key] + self.alpha) / (self._offers[key] + self.beta)

    def utilization(self, client: str, relay: str) -> float:
        """Observed win rate (wins / offers); NaN before any offer."""
        key = (client, relay)
        offers = self._offers[key]
        if offers == 0:
            return float("nan")
        return self._wins[key] / offers

    def candidates(
        self,
        client: str,
        server: str,
        full_set: Sequence[str],
        rng: np.random.Generator,
        *,
        now: float = 0.0,
    ) -> List[str]:
        pool = list(full_set)
        if not pool:
            return []
        k = min(self.k, len(pool))
        weights = np.array([self.weight(client, r) for r in pool], dtype=np.float64)
        probs = weights / weights.sum()
        picked = rng.choice(len(pool), size=k, replace=False, p=probs)
        return [pool[i] for i in picked]

    def observe(
        self,
        client: str,
        server: str,
        offered: Sequence[str],
        chosen: Optional[str],
        throughput: Optional[float] = None,
    ) -> None:
        for relay in offered:
            self._offers[(client, relay)] += 1
        if chosen is not None:
            if chosen not in offered:
                raise ValueError(f"chosen relay {chosen!r} was not in the offered set")
            self._wins[(client, chosen)] += 1
