"""Mid-transfer adaptive switching: fixing the paper's penalty mechanism.

The paper's penalties happen when conditions shift *after* the probe: the
indirect path is chosen, then the direct path recovers and the client is
stuck on the slower path for the rest of the transfer (§3.1).  The obvious
remedy - which the paper's conclusion gestures at when it notes indirect
routing "can also be used to decrease throughput variability" - is to keep
watching the transfer and re-decide when it underperforms.

:class:`AdaptiveTransferSession` implements that extension:

1. run the normal probe race and start fetching the remainder on the
   winner, remembering the winner's probe throughput as the *expectation*;
2. a watchdog samples the bulk flow every ``check_interval`` seconds; if
   recent throughput falls below ``stall_threshold`` x expectation, the
   flow is aborted and the candidates are re-probed **from the current
   offset** (the probe bytes are payload, so re-probing wastes nothing but
   the race's losing bytes);
3. the remainder continues on the new winner; at most ``max_switches``
   switches per transfer bound the thrash.

The ablation bench A10 shows this trims the penalty tail at negligible cost
on healthy transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.probe import DEFAULT_PROBE_BYTES, ProbeEngine, ProbeMode, ProbeOutcome
from repro.core.resilience import StallWatchdog
from repro.core.session import SessionConfig
from repro.http.messages import ByteRange, HttpRequest
from repro.http.transfer import HttpTransfer, issue_download
from repro.overlay.paths import OverlayPath, OverlayPathBuilder
from repro.tcp.fluid import FluidNetwork
from repro.util.validation import check_in_range, check_positive

__all__ = ["AdaptiveConfig", "AdaptiveResult", "AdaptiveTransferSession"]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Watchdog parameters on top of a normal :class:`SessionConfig`."""

    session: SessionConfig = SessionConfig()
    #: Seconds between watchdog samples of the bulk flow.
    check_interval: float = 4.0
    #: Re-probe when recent throughput < threshold x expected throughput.
    stall_threshold: float = 0.5
    #: Maximum path switches per transfer.
    max_switches: int = 2
    #: Let a fresh path run at least this long before judging it (slow
    #: start must finish before the first sample is meaningful).
    grace_period: float = 3.0

    def __post_init__(self) -> None:
        check_positive(self.check_interval, "check_interval")
        check_in_range(self.stall_threshold, "stall_threshold", 0.0, 1.0)
        if self.max_switches < 0:
            raise ValueError("max_switches must be >= 0")
        check_positive(self.grace_period, "grace_period")


@dataclass
class AdaptiveResult:
    """Outcome of one adaptive download."""

    client: str
    server: str
    resource: str
    size: float
    requested_at: float
    completed_at: float
    #: Path labels in the order they carried payload (probe winners).
    path_sequence: Tuple[str, ...]
    switches: int
    probes_run: int

    @property
    def duration(self) -> float:
        return self.completed_at - self.requested_at

    @property
    def throughput(self) -> float:
        """End-to-end throughput in bytes/second (all phases included)."""
        if self.duration <= 0.0:
            raise ValueError("non-positive duration")
        return self.size / self.duration

    @property
    def final_via(self) -> Optional[str]:
        """Relay that carried the final phase (None = direct)."""
        last = self.path_sequence[-1]
        return None if last == "direct" else last


class AdaptiveTransferSession:
    """Probe -> fetch -> watch -> (re-probe + switch) transfer loop."""

    def __init__(
        self,
        network: FluidNetwork,
        builder: OverlayPathBuilder,
        config: AdaptiveConfig = AdaptiveConfig(),
        *,
        rng=None,
    ):
        self._network = network
        self._builder = builder
        self._config = config
        self._probe_engine = ProbeEngine(
            network,
            tcp=config.session.tcp,
            noise_sigma=config.session.probe_noise_sigma,
            rng=rng,
        )

    # ------------------------------------------------------------------ #
    def download(
        self,
        client: str,
        server: str,
        resource: str,
        relays: Sequence[str],
    ) -> AdaptiveResult:
        """Adaptively download ``resource``; returns the phase history."""
        cfg = self._config
        sim = self._network.sim
        paths: List[OverlayPath] = [self._builder.direct(client, server)] + [
            self._builder.indirect(client, relay, server) for relay in relays
        ]
        size = int(paths[0].server.resource_size(resource))
        requested_at = sim.now

        x = int(min(cfg.session.probe_bytes, size))
        outcome = self._probe_engine.run(
            paths,
            resource,
            probe_bytes=x,
            mode=cfg.session.probe_mode,
            offset=0,
        )
        probes_run = 1
        current = outcome.winner
        expected = outcome.throughput_of(current.label) or 0.0
        sequence = [current.label]
        offset = min(x, size)
        switches = 0

        while offset < size:
            transfer = self._fetch(current, resource, offset, size)
            allow_switch = switches < cfg.max_switches
            stalled = self._watch(transfer, expected, allow_switch=allow_switch)
            if not stalled:
                break  # completed
            # Stalled: abort and re-probe from the current offset.  The
            # aborted flow's delivered bytes stay counted - HTTP ranges let
            # the client resume exactly where it left off.
            delivered = int(transfer.flow.delivered)
            transfer.abort(self._network)
            offset += delivered
            if offset >= size:
                break
            switches += 1
            probe_x = int(min(cfg.session.probe_bytes, size - offset))
            outcome = self._probe_engine.run(
                paths,
                resource,
                probe_bytes=probe_x,
                mode=cfg.session.probe_mode,
                offset=offset,
            )
            probes_run += 1
            current = outcome.winner
            expected = outcome.throughput_of(current.label) or 0.0
            sequence.append(current.label)
            offset += probe_x

        return AdaptiveResult(
            client=client,
            server=server,
            resource=resource,
            size=float(size),
            requested_at=requested_at,
            completed_at=sim.now,
            path_sequence=tuple(sequence),
            switches=switches,
            probes_run=probes_run,
        )

    # ------------------------------------------------------------------ #
    def _fetch(
        self, path: OverlayPath, resource: str, offset: int, size: int
    ) -> HttpTransfer:
        request = HttpRequest(
            host=path.server.name,
            path=resource,
            byte_range=ByteRange(offset, size - 1),
            via=path.via,
        )
        return issue_download(
            self._network,
            path.route,
            path.server,
            request,
            proxy=path.proxy,
            tcp=self._config.session.tcp,
            name=f"adaptive:{path.label}@{offset}",
        )

    def _watch(
        self, transfer: HttpTransfer, expected: float, *, allow_switch: bool
    ) -> bool:
        """Advance the sim until the transfer completes or stalls.

        Returns True when the watchdog declared a stall (and the caller
        should switch); False when the transfer completed.  With the switch
        budget exhausted (or no expectation to judge against) the transfer
        simply runs to completion.

        The sampling loop itself lives in :class:`~repro.core.resilience.
        StallWatchdog` (shared with the resilient protocol's failover): it
        plants explicit wake-up events, because the fluid engine only
        generates events at rate changes, so a steadily flowing transfer
        would otherwise never yield control between start and finish.
        """
        cfg = self._config
        if expected <= 0.0 or not allow_switch:
            self._network.run_to_completion(transfer.flow)
            return False
        watchdog = StallWatchdog(
            self._network.sim,
            stall_threshold=cfg.stall_threshold,
            check_interval=cfg.check_interval,
            grace_period=cfg.grace_period,
        )
        return watchdog.watch(transfer, expected).stalled
