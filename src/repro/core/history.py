"""History-ranked relay selection: an RON-flavoured throughput-EWMA policy.

RON-style systems maintain per-path quality estimates from past transfers
rather than probing fresh each time.  :class:`HistoryRankedPolicy` keeps an
exponentially weighted moving average of the bulk-phase throughput each
relay delivered *when chosen*, and offers the top ``k`` estimates.  Unseen
relays carry an optimistic default, so the policy explores the full set
before settling (optimism in the face of uncertainty).

Compared with the paper's uniform random set this baseline trades
exploration for exploitation: it converges on good relays faster but can
lock onto a stale favourite when conditions shift - which is exactly the
weakness the paper's fresh-probe design avoids.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.policy import SelectionPolicy
from repro.util.validation import check_in_range

__all__ = ["HistoryRankedPolicy"]


class HistoryRankedPolicy(SelectionPolicy):
    """Offer the k relays with the best historical throughput EWMA.

    Parameters
    ----------
    k:
        Candidate-set size.
    alpha:
        EWMA smoothing factor in (0, 1]; higher = faster forgetting.
    explore_unseen:
        When True (default) relays without history rank above any relay
        with history, guaranteeing every relay is tried.
    """

    def __init__(self, k: int, *, alpha: float = 0.3, explore_unseen: bool = True):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.alpha = check_in_range(alpha, "alpha", 0.0, 1.0)
        if self.alpha == 0.0:
            raise ValueError("alpha must be > 0 (alpha=0 never learns)")
        self.explore_unseen = bool(explore_unseen)
        self._estimates: Dict[Tuple[str, str], float] = {}

    @property
    def name(self) -> str:
        return f"HistoryRanked(k={self.k})"

    def estimate(self, client: str, relay: str) -> Optional[float]:
        """Current throughput estimate (bytes/second) or ``None`` if unseen."""
        return self._estimates.get((client, relay))

    def candidates(
        self,
        client: str,
        server: str,
        full_set: Sequence[str],
        rng: np.random.Generator,
        *,
        now: float = 0.0,
    ) -> List[str]:
        pool = list(full_set)
        if not pool:
            return []
        k = min(self.k, len(pool))

        def rank_key(relay: str):
            est = self._estimates.get((client, relay))
            if est is None:
                # Optimistic default sorts first (or last if disabled).
                return (0 if self.explore_unseen else 2, 0.0)
            return (1, -est)

        # Shuffle first so ties (e.g. several unseen relays) break randomly.
        rng.shuffle(pool)
        pool.sort(key=rank_key)
        return pool[:k]

    def observe(
        self,
        client: str,
        server: str,
        offered: Sequence[str],
        chosen: Optional[str],
        throughput: Optional[float] = None,
    ) -> None:
        if chosen is None or throughput is None or throughput <= 0.0:
            return
        key = (client, chosen)
        prev = self._estimates.get(key)
        if prev is None:
            self._estimates[key] = float(throughput)
        else:
            self._estimates[key] = self.alpha * float(throughput) + (1 - self.alpha) * prev

    @property
    def n_estimates(self) -> int:
        """Number of (client, relay) pairs with at least one observation."""
        return len(self._estimates)
