"""Resilient-transfer primitives: outcomes, recovery timelines, stall watchdog.

The paper's mechanism is brittle by construction: a probe on a dead path has
no deadline, and a path that dies *after* selection strands the transfer.
The lineage it builds on (RON, MONET, mHTTP) treats recovery as part of the
protocol, and this module provides the shared vocabulary for that layer:

:class:`SessionOutcome`
    How a session ended: clean completion, completion after one or more
    recovery actions, or a bounded abort.
:class:`RecoveryEvent`
    One timestamped entry in a session's recovery timeline (stall detected,
    failover issued, backoff wait, re-probe, probe timeout, abort).
:class:`ResilienceConfig`
    The protocol knobs: probe deadline, failover enablement, stall detection
    parameters, retry budgets and the deterministic exponential backoff.
:class:`StallWatchdog`
    The shared stall detector used by both :class:`~repro.core.session.
    TransferSession` failover and :class:`~repro.core.adaptive.
    AdaptiveTransferSession` switching.  It plants explicit wake-up events
    (the fluid engine only generates events at rate changes), samples the
    flow's delivered bytes, and declares a stall when recent throughput
    drops below ``stall_threshold x expected`` - or, independently of any
    expectation, when a full check window passes with zero progress.

Everything here is deterministic: watchdog wake-ups are scheduled at times
derived from simulation state only, and backoff waits are a pure function of
the retry count.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.sim.errors import TransferError
from repro.util.validation import check_in_range, check_positive

__all__ = [
    "RECOVERY_EVENT_KINDS",
    "RecoveryEvent",
    "ResilienceConfig",
    "SessionOutcome",
    "StallWatchdog",
    "WatchVerdict",
    "advance_until_done",
    "recovery_time_of",
]


class SessionOutcome(enum.Enum):
    """How a transfer session ended."""

    #: Every byte arrived over the originally selected path.
    COMPLETED = "completed"
    #: Every byte arrived, but only after at least one recovery action.
    FAILED_OVER = "failed_over"
    #: The session gave up (probe timeout, retry budget or deadline).
    ABORTED = "aborted"
    #: Every byte arrived, but the session lost at least one of its striped
    #: paths on the way (striped sessions degrade rather than fail over).
    DEGRADED = "degraded"


#: Valid :attr:`RecoveryEvent.kind` values, in rough lifecycle order.  The
#: last two belong to striped sessions (:mod:`repro.stripe`): ``path_dead``
#: when a stripe path stops progressing and returns its blocks, ``reissue``
#: when a tail block is speculatively duplicated onto a second path.
RECOVERY_EVENT_KINDS: Tuple[str, ...] = (
    "stall",
    "failover",
    "backoff",
    "reprobe",
    "probe_timeout",
    "abort",
    "path_dead",
    "reissue",
)


@dataclass(frozen=True)
class RecoveryEvent:
    """One entry in a session's recovery timeline.

    Attributes
    ----------
    time:
        Simulation time of the event.
    kind:
        One of :data:`RECOVERY_EVENT_KINDS`.
    path:
        Label of the path involved (``"direct"``, a relay name, or ``""``
        when no single path applies, e.g. a backoff wait).
    bytes_received:
        Cumulative payload bytes the client held at this point.
    detail:
        Kind-specific scalar: for ``stall`` the seconds since the watchdog
        last saw progress, for ``backoff`` the wait length in seconds, for
        ``probe_timeout`` the configured deadline; 0.0 otherwise.
    """

    time: float
    kind: str
    path: str
    bytes_received: float
    detail: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in RECOVERY_EVENT_KINDS:
            raise ValueError(
                f"unknown recovery event kind {self.kind!r}; "
                f"expected one of {RECOVERY_EVENT_KINDS}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-compatible rendering."""
        return {
            "time": self.time,
            "kind": self.kind,
            "path": self.path,
            "bytes_received": self.bytes_received,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RecoveryEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(**d)


@dataclass(frozen=True)
class ResilienceConfig:
    """Protocol-level robustness knobs of a transfer session.

    The defaults reproduce the legacy (pre-resilience) protocol exactly:
    no probe deadline, no failover, no transfer deadline.  Studies that
    want the resilient protocol opt in explicitly.

    Attributes
    ----------
    probe_deadline:
        Seconds a probe race may run before it is torn down with a
        structured :class:`~repro.core.probe.ProbeTimeout`.  In sequential
        mode the deadline applies per candidate (each probe gets the full
        budget).  ``None`` (default) keeps the legacy unbounded race.
    failover:
        Enable mid-transfer failover: when the selected path stalls, the
        remaining bytes are re-requested over the probe runner-up (direct
        as last resort), then via backoff + re-probe.
    stall_threshold / check_interval / grace_period:
        Watchdog parameters, as in :class:`~repro.core.adaptive.
        AdaptiveConfig`: sample every ``check_interval`` seconds after a
        ``grace_period`` warm-up; stall when recent throughput drops below
        ``stall_threshold x expected`` (or when progress stops entirely).
    max_failovers:
        Path switches allowed per session before it aborts.
    max_reprobes:
        Mid-transfer re-probe rounds allowed after the alternates are
        exhausted.
    backoff_base / backoff_factor:
        The deterministic exponential backoff before re-probe round ``k``
        waits ``backoff_base * backoff_factor ** k`` seconds.
    transfer_deadline:
        Bound on a whole session (seconds from request).  Reaching it
        aborts the session with the bytes received so far.  ``None``
        (default) leaves sessions unbounded, as before.
    """

    probe_deadline: Optional[float] = None
    failover: bool = False
    stall_threshold: float = 0.5
    check_interval: float = 4.0
    grace_period: float = 3.0
    max_failovers: int = 3
    max_reprobes: int = 2
    backoff_base: float = 2.0
    backoff_factor: float = 2.0
    transfer_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.probe_deadline is not None:
            check_positive(self.probe_deadline, "probe_deadline")
        check_in_range(self.stall_threshold, "stall_threshold", 0.0, 1.0)
        check_positive(self.check_interval, "check_interval")
        check_positive(self.grace_period, "grace_period")
        if self.max_failovers < 0:
            raise ValueError("max_failovers must be >= 0")
        if self.max_reprobes < 0:
            raise ValueError("max_reprobes must be >= 0")
        check_positive(self.backoff_base, "backoff_base")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1 (non-decreasing waits), "
                f"got {self.backoff_factor}"
            )
        if self.transfer_deadline is not None:
            check_positive(self.transfer_deadline, "transfer_deadline")

    def backoff_wait(self, reprobe_round: int) -> float:
        """Deterministic exponential backoff before re-probe ``reprobe_round``."""
        if reprobe_round < 0:
            raise ValueError("reprobe_round must be >= 0")
        return self.backoff_base * self.backoff_factor**reprobe_round


@dataclass(frozen=True)
class WatchVerdict:
    """Outcome of one :meth:`StallWatchdog.watch` call.

    ``reason`` is ``"completed"`` when the transfer finished, else one of
    ``"stall"`` (throughput below threshold or zero progress), ``"frozen"``
    (the engine proved no active flow can ever progress again) or
    ``"deadline"`` (the absolute deadline passed).  ``idle_seconds`` is the
    time since the watchdog last saw the flow progress.
    """

    stalled: bool
    reason: str
    idle_seconds: float = 0.0


def _noop() -> None:
    return None


def advance_until_done(sim: Any, transfer: Any, deadline_at: float) -> bool:
    """Run ``sim`` until ``transfer`` completes or the clock hits ``deadline_at``.

    Returns True when the transfer completed.  A frozen transport engine
    (every active flow at zero rate with no future capacity change - the
    fluid engine raises :class:`~repro.sim.errors.TransferError` for this)
    returns early: nothing can progress, so waiting longer is pointless.
    """
    if transfer.done:
        return True
    if math.isinf(deadline_at):
        raise ValueError("deadline_at must be finite (use run_to_completion)")
    if deadline_at < sim.now:
        return False
    wake = sim.schedule_at(deadline_at, _noop, name="transfer-deadline")
    try:
        while not transfer.done and sim.now < deadline_at:
            try:
                sim.run_until_true(lambda: transfer.done or sim.now >= deadline_at)
            except TransferError:
                break
    finally:
        sim.cancel(wake)
    return transfer.done


class StallWatchdog:
    """Deterministic stall detector over one in-flight transfer.

    The watchdog owns no state between :meth:`watch` calls; each call
    supervises one transfer until it completes or a stall verdict is
    reached.  See the module docstring for the detection rules.
    """

    def __init__(
        self,
        sim: Any,
        *,
        stall_threshold: float,
        check_interval: float,
        grace_period: float,
    ):
        check_in_range(stall_threshold, "stall_threshold", 0.0, 1.0)
        check_positive(check_interval, "check_interval")
        check_positive(grace_period, "grace_period")
        self._sim = sim
        self._stall_threshold = stall_threshold
        self._check_interval = check_interval
        self._grace_period = grace_period

    # ------------------------------------------------------------------ #
    def _advance(self, transfer: Any, wake_at: float) -> str:
        """Run until the transfer completes, ``wake_at`` passes, or the
        engine freezes; returns ``"done"``, ``"woke"`` or ``"frozen"``."""
        sim = self._sim
        if transfer.done:
            return "done"
        wake = sim.schedule_at(wake_at, _noop, name="watchdog")
        try:
            sim.run_until_true(lambda: transfer.done or sim.now >= wake_at)
        except TransferError:
            return "frozen"
        finally:
            sim.cancel(wake)
        return "done" if transfer.done else "woke"

    def watch(
        self,
        transfer: Any,
        expected: float,
        *,
        deadline_at: float = math.inf,
    ) -> WatchVerdict:
        """Advance the sim until ``transfer`` completes or stalls.

        ``expected`` is the throughput the path promised (its probe
        measurement); with ``expected <= 0`` only the zero-progress rule
        and the deadline apply.  ``deadline_at`` is an absolute simulation
        time bounding the whole watch.
        """
        obs = getattr(self._sim, "observer", None)
        if obs is not None:
            obs.count("watchdog.watches")
        verdict = self._watch(transfer, expected, deadline_at, obs)
        if obs is not None:
            obs.count("watchdog.verdict." + verdict.reason)
            if verdict.stalled:
                obs.observe_value("watchdog.idle_seconds", verdict.idle_seconds)
        return verdict

    def _watch(
        self,
        transfer: Any,
        expected: float,
        deadline_at: float,
        obs: Any,
    ) -> WatchVerdict:
        sim = self._sim
        start = sim.now
        if start >= deadline_at:
            return WatchVerdict(True, "deadline", 0.0)
        threshold = self._stall_threshold * expected if expected > 0.0 else 0.0

        # Grace: let slow start finish before judging the path.
        status = self._advance(transfer, min(start + self._grace_period, deadline_at))
        if status == "done":
            return WatchVerdict(False, "completed")
        if status == "frozen":
            return WatchVerdict(True, "frozen", sim.now - start)

        last_t = sim.now
        last_d = float(transfer.flow.delivered_at(last_t))
        healthy_at = last_t
        while True:
            if obs is not None:
                obs.count("watchdog.checks")
            if sim.now >= deadline_at:
                return WatchVerdict(True, "deadline", sim.now - healthy_at)
            status = self._advance(
                transfer, min(last_t + self._check_interval, deadline_at)
            )
            if status == "done":
                return WatchVerdict(False, "completed")
            if status == "frozen":
                return WatchVerdict(True, "frozen", sim.now - healthy_at)
            now = sim.now
            elapsed = max(now - last_t, 1e-9)
            delivered = float(transfer.flow.delivered_at(now))
            recent = (delivered - last_d) / elapsed
            progressed = delivered > last_d
            if progressed:
                healthy_at = now
            last_t, last_d = now, delivered
            if not progressed or recent < threshold:
                return WatchVerdict(True, "stall", now - healthy_at)


def recovery_time_of(events: Sequence[RecoveryEvent]) -> float:
    """Time-to-recover of a session's first stall, in seconds.

    Measured from the watchdog's last healthy sample before the first
    ``stall`` event to the recovery action (``failover`` or ``reprobe``)
    that answered it: ``stall.detail`` covers the detection latency and the
    event gap covers backoff waits and re-probe races.  NaN when the
    session never stalled or never recovered (aborted sessions).
    """
    for i, event in enumerate(events):
        if event.kind == "stall":
            for later in events[i + 1 :]:
                if later.kind in ("failover", "reprobe"):
                    return (later.time - event.time) + event.detail
            return float("nan")
    return float("nan")
