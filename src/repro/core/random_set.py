"""The paper's §4 policy: a uniformly random subset of the full relay set.

For each transfer the client draws ``k`` relays uniformly without
replacement, probes them alongside the direct path and selects the
first-to-finish.  The paper's Fig. 6 sweeps ``k`` from 1 to 35 and finds the
improvement curve levels off around ``k ≈ 10``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.policy import SelectionPolicy

__all__ = ["UniformRandomSetPolicy"]


class UniformRandomSetPolicy(SelectionPolicy):
    """Uniformly random ``k``-subset of the deployed relays.

    Parameters
    ----------
    k:
        Random-set size.  When ``k`` exceeds the full set size the whole set
        is offered (the paper's k = 35 endpoint behaves this way).
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"random set size k must be >= 1, got {k}")
        self.k = int(k)

    @property
    def name(self) -> str:
        return f"UniformRandomSet(k={self.k})"

    def candidates(
        self,
        client: str,
        server: str,
        full_set: Sequence[str],
        rng: np.random.Generator,
        *,
        now: float = 0.0,
    ) -> List[str]:
        pool = list(full_set)
        if not pool:
            return []
        k = min(self.k, len(pool))
        picked = rng.choice(len(pool), size=k, replace=False)
        return [pool[i] for i in picked]
