"""The paper's contribution: probe-based indirect path selection."""

from repro.core.adaptive import AdaptiveConfig, AdaptiveResult, AdaptiveTransferSession
from repro.core.history import HistoryRankedPolicy
from repro.core.oracle import OracleBestRelayPolicy
from repro.core.policy import (
    AllRelaysPolicy,
    DirectOnlyPolicy,
    LatencyRankedPolicy,
    SelectionPolicy,
    SingleRandomRelayPolicy,
    StaticRelayPolicy,
)
from repro.core.predictor import EwmaPredictor, OraclePredictor, PathPredictor
from repro.core.probe import (
    DEFAULT_PROBE_BYTES,
    PathProbe,
    ProbeEngine,
    ProbeMode,
    ProbeOutcome,
    ProbeTimeout,
)
from repro.core.random_set import UniformRandomSetPolicy
from repro.core.resilience import (
    RecoveryEvent,
    ResilienceConfig,
    SessionOutcome,
    StallWatchdog,
    WatchVerdict,
    recovery_time_of,
)
from repro.core.session import SessionConfig, SessionResult, TransferSession
from repro.core.weighted import UtilizationWeightedPolicy

__all__ = [
    "DEFAULT_PROBE_BYTES",
    "ProbeMode",
    "ProbeEngine",
    "ProbeOutcome",
    "PathProbe",
    "SelectionPolicy",
    "DirectOnlyPolicy",
    "StaticRelayPolicy",
    "AllRelaysPolicy",
    "SingleRandomRelayPolicy",
    "LatencyRankedPolicy",
    "UniformRandomSetPolicy",
    "UtilizationWeightedPolicy",
    "OracleBestRelayPolicy",
    "HistoryRankedPolicy",
    "PathPredictor",
    "OraclePredictor",
    "EwmaPredictor",
    "ProbeTimeout",
    "ResilienceConfig",
    "SessionOutcome",
    "RecoveryEvent",
    "StallWatchdog",
    "WatchVerdict",
    "recovery_time_of",
    "SessionConfig",
    "SessionResult",
    "TransferSession",
    "AdaptiveConfig",
    "AdaptiveResult",
    "AdaptiveTransferSession",
]
