"""Path throughput predictors.

The paper's predictor is implicit: probe throughput over the first x bytes
predicts whole-transfer throughput.  This module makes the predictor concept
explicit so alternatives can be compared:

OraclePredictor
    Peeks at the capacity traces and predicts the time-average bottleneck
    capacity over a look-ahead horizon, capped by the TCP window rate.  An
    un-implementable upper bound used as a baseline.
EwmaPredictor
    Exponentially weighted moving average of previously *observed* transfer
    throughputs per path - the classic history-based alternative the related
    work (RON) uses for path quality.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional, Tuple

from repro.http.transfer import TcpParams
from repro.overlay.paths import OverlayPath
from repro.util.validation import check_in_range, check_positive

__all__ = ["PathPredictor", "OraclePredictor", "EwmaPredictor"]


class PathPredictor(abc.ABC):
    """Predicts the throughput (bytes/second) a path would deliver now."""

    @abc.abstractmethod
    def predict(self, path: OverlayPath, now: float) -> float:
        """Predicted long-transfer throughput for ``path`` starting at ``now``."""


class OraclePredictor(PathPredictor):
    """Trace-peeking predictor: mean bottleneck capacity over a horizon.

    Parameters
    ----------
    horizon:
        Look-ahead window in seconds; roughly the expected transfer length.
    tcp:
        Connection parameters; predictions are capped at ``W_max / RTT``.
    """

    def __init__(self, horizon: float = 30.0, *, tcp: TcpParams = TcpParams()):
        self.horizon = check_positive(horizon, "horizon")
        self._tcp = tcp

    def predict(self, path: OverlayPath, now: float) -> float:
        trace = path.route.bottleneck_trace()
        mean_cap = trace.mean_over(now, now + self.horizon)
        window_rate = self._tcp.max_window / max(path.route.rtt, 1e-4)
        return min(mean_cap, window_rate)


class EwmaPredictor(PathPredictor):
    """History-based predictor with exponential forgetting.

    ``observe`` feeds measured throughputs; ``predict`` returns the current
    estimate, or ``default`` for never-observed paths (optimistic defaults
    encourage exploration).
    """

    def __init__(self, alpha: float = 0.3, *, default: float = float("inf")):
        self.alpha = check_in_range(alpha, "alpha", 0.0, 1.0)
        self.default = float(default)
        self._estimates: Dict[Tuple[str, str, Optional[str]], float] = {}

    @staticmethod
    def _key(path: OverlayPath) -> Tuple[str, str, Optional[str]]:
        return (path.route.destination, path.server.name, path.via)

    def observe(self, path: OverlayPath, throughput: float) -> None:
        """Record a measured transfer throughput for ``path``."""
        check_positive(throughput, "throughput")
        key = self._key(path)
        prev = self._estimates.get(key)
        if prev is None:
            self._estimates[key] = throughput
        else:
            self._estimates[key] = self.alpha * throughput + (1.0 - self.alpha) * prev

    def predict(self, path: OverlayPath, now: float) -> float:
        return self._estimates.get(self._key(path), self.default)

    @property
    def n_paths_observed(self) -> int:
        """Number of distinct paths with at least one observation."""
        return len(self._estimates)
