"""The throughput probe: the heart of the paper's mechanism.

To predict which path will carry a long TCP transfer fastest, the client
downloads the **first x bytes** of the target file over every candidate path
(HTTP range requests) and observes which finishes first.  ``x = 100 KB`` is
chosen so the probe outlasts TCP slow-start and approximates steady-state
throughput (paper §2.1).

Two probing modes are provided:

CONCURRENT (the paper's design)
    All range requests are issued simultaneously; the first path to deliver
    its x bytes wins and the others are aborted.  Concurrent probes sharing
    the client's access link contend with each other - a real overhead the
    simulator reproduces.
SEQUENTIAL
    Candidates are probed one at a time and the highest measured throughput
    wins.  No self-interference, but the probe phase takes longer.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.core import Observer

from repro.http.messages import ByteRange, HttpRequest
from repro.http.transfer import HttpTransfer, TcpParams, issue_download
from repro.overlay.paths import OverlayPath
from repro.sim.errors import TransferError
from repro.tcp.fluid import FluidNetwork
from repro.util.units import kb

__all__ = [
    "ProbeMode",
    "PathProbe",
    "ProbeOutcome",
    "ProbeEngine",
    "ProbeTimeout",
    "DEFAULT_PROBE_BYTES",
]

#: The paper's experimentally determined probe size (100 KB).
DEFAULT_PROBE_BYTES: float = kb(100)


class ProbeMode(enum.Enum):
    """How candidate paths are probed."""

    CONCURRENT = "concurrent"
    SEQUENTIAL = "sequential"


class ProbeTimeout(TransferError):
    """No candidate finished its probe before the configured deadline.

    Carries the partial race state so callers (and the availability
    analysis) can see how far each candidate got before the race was torn
    down.  Raised only when a finite ``deadline`` was requested; the legacy
    unbounded race keeps its original failure modes.
    """

    def __init__(
        self,
        *,
        probes: List["PathProbe"],
        started_at: float,
        timed_out_at: float,
        probe_bytes: float,
        deadline: float,
    ):
        self.probes = probes
        self.started_at = started_at
        self.timed_out_at = timed_out_at
        self.probe_bytes = probe_bytes
        self.deadline = deadline
        labels = [p.label for p in probes]
        super().__init__(
            f"probe race over {labels} timed out at t={timed_out_at:.6g} "
            f"({timed_out_at - started_at:.6g}s elapsed, deadline {deadline}s): "
            "no candidate finished its probe"
        )


@dataclass
class PathProbe:
    """Result of probing one candidate path.

    ``throughput`` is the probe's achieved rate (bytes/second) when it ran
    to completion, ``None`` when it was aborted after losing the race.
    ``measured_throughput`` is the client's (noisy) estimate of it - the
    value sequential selection actually ranks by.  Real probe measurements
    jitter with OS scheduling, transient cross-traffic and TCP state; the
    paper's Table III attributes imperfect utilisation/improvement
    correlation exactly to this estimation error.
    """

    path: OverlayPath
    transfer: HttpTransfer
    completed_at: Optional[float] = None
    throughput: Optional[float] = None
    measured_throughput: Optional[float] = None

    @property
    def label(self) -> str:
        return self.path.label

    @property
    def won(self) -> bool:
        return self.completed_at is not None and self.throughput is not None


@dataclass
class ProbeOutcome:
    """Aggregate result of one probe round.

    Attributes
    ----------
    winner:
        The selected path (never ``None``; with a single candidate it wins
        by default).
    probes:
        Per-path results in candidate order.
    started_at / decided_at:
        Simulation times bracketing the probe phase.
    probe_bytes:
        Probe size per path (the x of the mechanism).
    """

    winner: OverlayPath
    probes: List[PathProbe]
    started_at: float
    decided_at: float
    probe_bytes: float

    @property
    def winner_is_indirect(self) -> bool:
        """True when an indirect path won the probe race."""
        return self.winner.is_indirect

    @property
    def overhead_seconds(self) -> float:
        """Wall time consumed by the probe phase."""
        return self.decided_at - self.started_at

    @property
    def total_probe_bytes(self) -> float:
        """Bytes moved by all probes combined (including aborted partials)."""
        return float(sum(p.transfer.flow.delivered for p in self.probes))

    def throughput_of(self, label: str) -> Optional[float]:
        """Measured probe throughput of the path labelled ``label``."""
        for p in self.probes:
            if p.label == label:
                return p.throughput
        raise KeyError(f"no probe for path {label!r}")

    def estimated_throughput(self, probe: PathProbe) -> float:
        """Best client-side throughput estimate for one candidate.

        The measured probe throughput when the probe finished; otherwise
        the bytes the losing probe moved during the race divided by the
        race duration (0.0 for an instantaneous race).
        """
        if probe.measured_throughput is not None:
            return float(probe.measured_throughput)
        elapsed = self.decided_at - self.started_at
        if elapsed <= 0.0:
            return 0.0
        return float(probe.transfer.flow.delivered) / elapsed

    def alternates(self) -> List[PathProbe]:
        """Failover order after the winner: losers by estimate, direct last.

        Mid-transfer failover re-issues the remaining range over the probe
        runner-up first; the direct path is deliberately kept as the last
        resort (it is the fallback that needs no overlay infrastructure).
        Ties preserve candidate order, so the ranking is deterministic.
        """
        losers = [p for p in self.probes if p.path.label != self.winner.label]
        ranked = sorted(losers, key=lambda p: -self.estimated_throughput(p))
        indirect = [p for p in ranked if p.path.is_indirect]
        direct = [p for p in ranked if not p.path.is_indirect]
        return indirect + direct


def _emit_probe_obs(obs: "Observer", outcome: ProbeOutcome) -> None:
    """Record one probe round: per-path spans plus the selection decision.

    Losing probes' spans end at the decision instant (when they were torn
    down) and carry the client's partial-throughput estimate, so a trace
    shows *why* the winner won, not just that it did.
    """
    for probe in outcome.probes:
        end = probe.completed_at if probe.completed_at is not None else outcome.decided_at
        obs.span(
            "probe",
            f"probe:{probe.label}",
            outcome.started_at,
            end,
            won=probe.path.label == outcome.winner.label,
            indirect=probe.path.is_indirect,
            est_throughput=outcome.estimated_throughput(probe),
        )
    obs.event(
        "probe",
        "selection",
        outcome.decided_at,
        winner=outcome.winner.label,
        indirect=outcome.winner_is_indirect,
        losers={
            p.label: outcome.estimated_throughput(p)
            for p in outcome.probes
            if p.path.label != outcome.winner.label
        },
    )
    obs.count("probe.rounds")
    if outcome.winner_is_indirect:
        obs.count("probe.indirect_selected")


class ProbeEngine:
    """Runs probe rounds on a fluid network.

    Parameters
    ----------
    network:
        The transport engine to issue probes on.
    tcp:
        TCP connection parameters for probe flows.
    """

    def __init__(
        self,
        network: FluidNetwork,
        *,
        tcp: TcpParams = TcpParams(),
        noise_sigma: float = 0.0,
        rng: "Optional[object]" = None,
    ):
        if noise_sigma < 0.0:
            raise ValueError(f"noise_sigma must be >= 0, got {noise_sigma}")
        if noise_sigma > 0.0 and rng is None:
            raise ValueError("probe noise requires an rng")
        self._network = network
        self._tcp = tcp
        self._noise_sigma = float(noise_sigma)
        self._rng = rng

    def _measure(self, true_throughput: float) -> float:
        """The client's estimate of a probe throughput (lognormal jitter)."""
        if self._noise_sigma == 0.0:
            return true_throughput
        return float(true_throughput * self._rng.lognormal(0.0, self._noise_sigma))

    def run(
        self,
        paths: Sequence[OverlayPath],
        resource: str,
        *,
        probe_bytes: float = DEFAULT_PROBE_BYTES,
        mode: ProbeMode = ProbeMode.CONCURRENT,
        offset: int = 0,
        deadline: Optional[float] = None,
    ) -> ProbeOutcome:
        """Probe ``paths`` for ``resource`` and return the outcome.

        Advances the simulation until the decision is made.  With one
        candidate the probe still runs (its bytes count toward the
        transfer), matching the paper's two-path experiment where both the
        direct and the single indirect path are probed.

        ``offset`` starts the probe range at ``bytes=offset-`` instead of
        the file head - used by mid-transfer re-probing, where the next
        unread bytes double as probe payload.

        ``deadline`` bounds the race in simulated seconds.  In concurrent
        mode the whole race shares it; in sequential mode every candidate
        gets the full budget (the probes run one after another).  When no
        candidate finishes in time, every probe is torn down and a
        structured :class:`ProbeTimeout` is raised.  ``None`` (the
        default) preserves the legacy unbounded behaviour, including the
        engine's ``TransferError`` on paths that are dead forever.
        """
        if not paths:
            raise ValueError("need at least one candidate path")
        if probe_bytes <= 0:
            raise ValueError(f"probe_bytes must be positive, got {probe_bytes}")
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline}")
        labels = [p.label for p in paths]
        if len(set(labels)) != len(labels):
            raise ValueError(f"candidate paths must be distinct, got {labels}")
        obs = self._network.sim.observer
        try:
            if mode is ProbeMode.CONCURRENT:
                outcome = self._run_concurrent(
                    list(paths), resource, probe_bytes, offset, deadline
                )
            else:
                outcome = self._run_sequential(
                    list(paths), resource, probe_bytes, offset, deadline
                )
        except ProbeTimeout as exc:
            if obs is not None:
                obs.count("probe.timeouts")
                obs.event(
                    "probe",
                    "probe_timeout",
                    exc.timed_out_at,
                    started_at=exc.started_at,
                    deadline=exc.deadline,
                    paths=[p.label for p in exc.probes],
                )
            raise
        if obs is not None:
            _emit_probe_obs(obs, outcome)
        return outcome

    # ------------------------------------------------------------------ #
    def _request_for(
        self, path: OverlayPath, resource: str, probe_bytes: float, offset: int
    ) -> HttpRequest:
        size = path.server.resource_size(resource)
        if offset >= size:
            raise ValueError(f"probe offset {offset} beyond resource size {size}")
        last = min(offset + int(probe_bytes), size) - 1
        return HttpRequest(
            host=path.server.name,
            path=resource,
            byte_range=ByteRange(offset, last),
            via=path.via,
        )

    def _run_concurrent(
        self,
        paths: List[OverlayPath],
        resource: str,
        probe_bytes: float,
        offset: int,
        deadline: Optional[float],
    ) -> ProbeOutcome:
        sim = self._network.sim
        started_at = sim.now
        state: Dict[str, Optional[PathProbe]] = {"winner": None}
        probes: List[PathProbe] = []

        def _on_done(transfer: HttpTransfer) -> None:
            if state["winner"] is not None:
                return  # a later finisher; already decided
            probe = next(p for p in probes if p.transfer is transfer)
            probe.completed_at = sim.now
            probe.throughput = transfer.throughput()
            probe.measured_throughput = probe.throughput
            state["winner"] = probe
            # The race is decided: tear down the losing probes (paper §2.1).
            for other in probes:
                if other is not probe:
                    other.transfer.abort(self._network)

        for path in paths:
            request = self._request_for(path, resource, probe_bytes, offset)
            transfer = issue_download(
                self._network,
                path.route,
                path.server,
                request,
                proxy=path.proxy,
                tcp=self._tcp,
                on_complete=_on_done,
                name=f"probe:{path.label}",
            )
            probes.append(PathProbe(path=path, transfer=transfer))

        if deadline is None:
            sim.run_until_true(lambda: state["winner"] is not None)
        else:
            deadline_at = started_at + deadline

            def decided() -> bool:
                return state["winner"] is not None or sim.now >= deadline_at

            wake = sim.schedule_at(deadline_at, lambda: None, name="probe-deadline")
            try:
                while not decided():
                    try:
                        sim.run_until_true(decided)
                    except TransferError:
                        # Every active flow is frozen with no future capacity
                        # change: no probe can ever finish, so declare the
                        # timeout now rather than idling to the deadline.
                        break
            finally:
                sim.cancel(wake)
            if state["winner"] is None:
                for probe in probes:
                    probe.transfer.abort(self._network)
                raise ProbeTimeout(
                    probes=probes,
                    started_at=started_at,
                    timed_out_at=sim.now,
                    probe_bytes=probe_bytes,
                    deadline=deadline,
                )
        winner_probe = state["winner"]
        assert winner_probe is not None
        return ProbeOutcome(
            winner=winner_probe.path,
            probes=probes,
            started_at=started_at,
            decided_at=sim.now,
            probe_bytes=probe_bytes,
        )

    def _run_sequential(
        self,
        paths: List[OverlayPath],
        resource: str,
        probe_bytes: float,
        offset: int,
        deadline: Optional[float],
    ) -> ProbeOutcome:
        from repro.core.resilience import advance_until_done

        sim = self._network.sim
        started_at = sim.now
        probes: List[PathProbe] = []
        for path in paths:
            request = self._request_for(path, resource, probe_bytes, offset)
            transfer = issue_download(
                self._network,
                path.route,
                path.server,
                request,
                proxy=path.proxy,
                tcp=self._tcp,
                name=f"probe:{path.label}",
            )
            if deadline is None:
                self._network.run_to_completion(transfer.flow)
            elif not advance_until_done(sim, transfer, sim.now + deadline):
                # Per-candidate budget exhausted: record the dead probe
                # (no measurement) and move on to the next candidate.
                transfer.abort(self._network)
                probes.append(PathProbe(path=path, transfer=transfer))
                continue
            true_tput = transfer.throughput()
            probes.append(
                PathProbe(
                    path=path,
                    transfer=transfer,
                    completed_at=sim.now,
                    throughput=true_tput,
                    measured_throughput=self._measure(true_tput),
                )
            )
        finished = [p for p in probes if p.won]
        if not finished:
            assert deadline is not None  # unbounded probes always finish
            raise ProbeTimeout(
                probes=probes,
                started_at=started_at,
                timed_out_at=sim.now,
                probe_bytes=probe_bytes,
                deadline=deadline,
            )
        best = max(finished, key=lambda p: p.measured_throughput or 0.0)
        return ProbeOutcome(
            winner=best.path,
            probes=probes,
            started_at=started_at,
            decided_at=sim.now,
            probe_bytes=probe_bytes,
        )
