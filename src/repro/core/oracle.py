"""Oracle relay selection: an un-implementable upper-bound baseline.

The oracle peeks at the (simulated) future: it offers the single relay whose
indirect path has the highest predicted throughput over the upcoming
transfer window, using :class:`~repro.core.predictor.OraclePredictor`.
The probe race then compares that relay against the direct path, so the
oracle bounds what *any* candidate-set policy could achieve with k = 1.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.core.policy import SelectionPolicy
from repro.core.predictor import OraclePredictor
from repro.overlay.paths import OverlayPath, OverlayPathBuilder

__all__ = ["OracleBestRelayPolicy"]


class OracleBestRelayPolicy(SelectionPolicy):
    """Offer the relay with the highest trace-peeking predicted throughput.

    Parameters
    ----------
    builder:
        Path builder used to materialise candidate indirect paths.
    server:
        Destination server name the oracle optimises for.
    predictor:
        The trace-peeking predictor (horizon ~ expected transfer time).
    """

    def __init__(
        self,
        builder: OverlayPathBuilder,
        server: str,
        *,
        predictor: OraclePredictor | None = None,
    ):
        self._builder = builder
        self._server = server
        self._predictor = predictor or OraclePredictor()

    @property
    def name(self) -> str:
        return "OracleBestRelay"

    def candidates(
        self,
        client: str,
        server: str,
        full_set: Sequence[str],
        rng: np.random.Generator,
        *,
        now: float = 0.0,
    ) -> List[str]:
        if not full_set:
            return []
        best_relay = None
        best_rate = -1.0
        for relay in full_set:
            path = self._builder.indirect(client, relay, self._server)
            rate = self._predictor.predict(path, now)
            if rate > best_rate:
                best_rate = rate
                best_relay = relay
        assert best_relay is not None
        return [best_relay]
