"""Selection policies: which relays a client considers for a transfer.

A policy answers one question per transfer: *from the full set of deployed
relays, which subset should the client probe?*  The probe race then picks
between the direct path and the offered indirect paths.

The paper's configurations map onto policies as follows:

* §2-3 experiments: :class:`StaticRelayPolicy` - a single, statically chosen
  relay per client.
* §4 experiments: :class:`UniformRandomSetPolicy` - a uniformly random
  k-subset per transfer (the "random set").
* §6 future work: :class:`~repro.core.weighted.UtilizationWeightedPolicy` -
  utilisation-weighted sampling (implemented in this reproduction).
* Baselines: :class:`DirectOnlyPolicy` (never route indirectly),
  :class:`AllRelaysPolicy` (probe everything),
  :class:`SingleRandomRelayPolicy`, :class:`LatencyRankedPolicy` (RON-style
  latency-based candidate ranking), and the oracle in
  :mod:`repro.core.oracle`.

Policies see feedback through :meth:`SelectionPolicy.observe`, which reports
the offered set and the chosen path after every transfer.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "SelectionPolicy",
    "DirectOnlyPolicy",
    "StaticRelayPolicy",
    "AllRelaysPolicy",
    "SingleRandomRelayPolicy",
    "LatencyRankedPolicy",
]


class SelectionPolicy(abc.ABC):
    """Chooses the candidate relay subset for each transfer."""

    @abc.abstractmethod
    def candidates(
        self,
        client: str,
        server: str,
        full_set: Sequence[str],
        rng: np.random.Generator,
        *,
        now: float = 0.0,
    ) -> List[str]:
        """Relay names to probe for this transfer (may be empty)."""

    def observe(
        self,
        client: str,
        server: str,
        offered: Sequence[str],
        chosen: Optional[str],
        throughput: Optional[float] = None,
    ) -> None:
        """Feedback hook after each transfer.

        ``chosen`` is the winning relay or ``None`` (direct path);
        ``throughput`` is the bulk-phase throughput the selected path
        delivered (bytes/second), when the caller knows it.
        """

    @property
    def name(self) -> str:
        """Short display name used in reports."""
        return type(self).__name__


class DirectOnlyPolicy(SelectionPolicy):
    """Never considers relays: the paper's control client."""

    def candidates(self, client, server, full_set, rng, *, now=0.0) -> List[str]:
        return []


class StaticRelayPolicy(SelectionPolicy):
    """One fixed relay per client (the paper's §2-3 configuration).

    Parameters
    ----------
    assignment:
        Mapping from client name to its statically chosen relay.  A
        ``default`` relay may be supplied for unmapped clients.
    """

    def __init__(self, assignment: Dict[str, str], *, default: Optional[str] = None):
        self._assignment = dict(assignment)
        self._default = default

    def candidates(self, client, server, full_set, rng, *, now=0.0) -> List[str]:
        relay = self._assignment.get(client, self._default)
        if relay is None:
            raise KeyError(f"no static relay assigned for client {client!r}")
        if relay not in full_set:
            raise ValueError(f"assigned relay {relay!r} is not deployed")
        return [relay]


class AllRelaysPolicy(SelectionPolicy):
    """Probe the entire full set (the paper's k = 35 endpoint)."""

    def candidates(self, client, server, full_set, rng, *, now=0.0) -> List[str]:
        return list(full_set)


class SingleRandomRelayPolicy(SelectionPolicy):
    """One uniformly random relay per transfer (one-hop source routing [2])."""

    def candidates(self, client, server, full_set, rng, *, now=0.0) -> List[str]:
        if not full_set:
            return []
        return [str(rng.choice(list(full_set)))]


class LatencyRankedPolicy(SelectionPolicy):
    """The k relays with the lowest client-relay RTT (RON-flavoured baseline).

    Latency is a poor proxy for throughput - which is the paper's point -
    so this baseline typically underperforms throughput probing with the
    same k.

    Parameters
    ----------
    k:
        Number of candidates to return.
    rtt_lookup:
        Callable ``(client, relay) -> rtt_seconds``.
    """

    def __init__(self, k: int, rtt_lookup):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self._rtt = rtt_lookup

    def candidates(self, client, server, full_set, rng, *, now=0.0) -> List[str]:
        ranked = sorted(full_set, key=lambda relay: self._rtt(client, relay))
        return list(ranked[: self.k])
