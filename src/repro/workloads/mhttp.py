"""mHTTP striping study: striped transfers as a rival to select-one.

The paper's mechanism races probes over k paths and commits the bulk
transfer to the single winner.  The multi-path literature (mHTTP, MPTCP,
Tor conflux) suggests the opposite move: *use* the k paths, striping
disjoint byte-range blocks across all of them at once.  This study puts
the two mechanisms side by side on identical scenarios:

* **select-k** - the paper's probe race over the direct path plus k-1
  relays, with the PR 4 resilience layer (probe deadline, mid-transfer
  failover, transfer deadline) enabled;
* **stripe-k** - a :class:`~repro.stripe.session.StripedSession` over the
  same direct-plus-(k-1)-relay path set.

Each unit also runs the direct-only control on the same (possibly
failure-injected) scenario, and emits one
:class:`~repro.trace.records.StripeRecord` row.  Failure injection cycles
``none`` / ``node`` by repetition slot: ``node`` crashes the unit's
primary relay *during the transfer window* - crash timing is drawn from
stable per-slot seed-bank labels, so select-k and stripe-k face the exact
same outage and the whole study is byte-identical for any worker count.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.resilience import ResilienceConfig
from repro.core.session import SessionConfig
from repro.net.failures import Outage, node_outage_plan
from repro.stripe.blocks import DEFAULT_BLOCK_BYTES, StripeConfig
from repro.trace.records import StripeRecord
from repro.workloads.experiment import STUDY_SESSION_CONFIG
from repro.workloads.scenario import Scenario

__all__ = [
    "MHTTP_MODES",
    "MHTTP_MECHANISMS",
    "MHTTP_RESILIENCE",
    "MHTTP_SESSION_CONFIG",
    "MhttpStudyParams",
    "mhttp_outage_plan",
    "parse_mhttp_variant",
    "plan_mhttp",
    "run_mhttp_unit",
]

#: Injection modes the study cycles through, one per repetition slot.
MHTTP_MODES = ("none", "node")

#: The two rival mechanisms compared on every (client, slot, k) coordinate.
MHTTP_MECHANISMS = ("select", "stripe")

#: Resilience settings for the select-one arm - the PR 4 failure model the
#: stripe is measured against (identical to the availability study's).
MHTTP_RESILIENCE = ResilienceConfig(
    probe_deadline=30.0,
    failover=True,
    transfer_deadline=1800.0,
)

MHTTP_SESSION_CONFIG = dataclasses.replace(
    STUDY_SESSION_CONFIG, resilience=MHTTP_RESILIENCE
)


@dataclass(frozen=True)
class MhttpStudyParams:
    """Plan-level parameters of the mHTTP study (``CampaignPlan.extra``).

    Hashed into the campaign fingerprint, so runs with different stripe
    geometry or crash processes can never share a checkpoint.

    The crash model is deliberately sharper than the availability study's
    Poisson processes: the ``node`` mode crashes the unit's primary relay
    at a *seeded offset inside the transfer window* for a fixed outage
    length, guaranteeing every injected failure actually intersects the
    session it targets (Poisson timing mostly misses short transfers,
    which starves the tail-latency comparison of affected samples).
    """

    block_bytes: float = DEFAULT_BLOCK_BYTES
    window: int = 2
    max_copies: int = 2
    #: Crash onset is uniform in [min, max] seconds after the unit starts.
    crash_delay_min: float = 4.0
    crash_delay_max: float = 30.0
    crash_duration: float = 240.0
    transfer_deadline: float = 1800.0

    def __post_init__(self) -> None:
        if self.crash_delay_min < 0.0 or self.crash_delay_max < self.crash_delay_min:
            raise ValueError(
                "crash delay bounds must satisfy 0 <= min <= max, got "
                f"[{self.crash_delay_min}, {self.crash_delay_max}]"
            )
        if self.crash_duration <= 0.0:
            raise ValueError("crash_duration must be positive")

    def stripe_config(self) -> StripeConfig:
        """The striped-session configuration all stripe units run with."""
        return StripeConfig(
            block_bytes=self.block_bytes,
            window=self.window,
            max_copies=self.max_copies,
            transfer_deadline=self.transfer_deadline,
        )


def parse_mhttp_variant(variant: str) -> Tuple[str, int, str]:
    """Decode a unit variant like ``"stripe3+node"`` -> (mechanism, k, mode).

    The variant string is the unit's full mechanism coordinate: which rival
    runs, over how many paths (direct included), under which injection.
    """
    head, sep, mode = variant.partition("+")
    if sep and mode in MHTTP_MODES:
        for mechanism in MHTTP_MECHANISMS:
            if head.startswith(mechanism):
                suffix = head[len(mechanism) :]
                if suffix.isdigit() and int(suffix) >= 2:
                    return mechanism, int(suffix), mode
    raise ValueError(
        f"malformed mhttp variant {variant!r}; expected e.g. 'stripe3+node'"
    )


def mhttp_outage_plan(
    scenario: Scenario,
    params: MhttpStudyParams,
    *,
    client: str,
    site: str,
    relay: str,
    mode: str,
    start_time: float,
) -> Dict[str, List[Outage]]:
    """The per-link outage map one unit injects, drawn from stable labels.

    ``node`` mode crashes ``relay`` (every WAN segment through it) at
    ``start_time`` plus a seeded delay.  The label path depends only on
    ``(client, site, relay)`` and the draw order is fixed, so every unit in
    the same repetition slot - select and stripe, any k sharing the primary
    relay - sees the *identical* failure environment regardless of worker
    count or execution order.
    """
    if mode not in MHTTP_MODES:
        raise ValueError(f"unknown mhttp mode {mode!r}; expected {MHTTP_MODES}")
    if mode == "none":
        return {}
    rng = scenario.bank.generator("mhttp-crash", client, site, relay)
    delay = float(
        rng.uniform(params.crash_delay_min, params.crash_delay_max)
    )
    outage = Outage(start=start_time + delay, duration=params.crash_duration)
    return node_outage_plan(scenario.topology.links, relay, [outage])


def plan_mhttp(
    scenario: Scenario,
    *,
    repetitions: int,
    interval: float,
    ks: Sequence[int] = (2, 3, 4),
    config: SessionConfig = MHTTP_SESSION_CONFIG,
    params: MhttpStudyParams = MhttpStudyParams(),
    site: str = "eBay",
    clients: Optional[Sequence[str]] = None,
    study: str = "mhttp",
):
    """Decompose the striping study into a fingerprinted campaign plan.

    Each client runs ``repetitions`` slots at ``interval`` spacing,
    alternating injection modes; every slot runs both mechanisms at every
    ``k`` (paths including direct) over the same k-1 relays, taken
    adjacently from the client's seeded rotation.  The mechanism coordinate
    rides in :attr:`~repro.runner.plan.WorkUnit.variant` (e.g.
    ``"stripe3+node"``) and units dispatch through the ``"mhttp"`` runner.
    """
    from repro.runner.plan import CampaignPlan, WorkUnit

    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    k_list = sorted(set(int(k) for k in ks))
    if not k_list or k_list[0] < 2:
        raise ValueError(f"ks must be integers >= 2, got {list(ks)}")
    if k_list[-1] - 1 > len(scenario.relay_names):
        raise ValueError(
            f"k={k_list[-1]} needs {k_list[-1] - 1} relays; scenario deploys "
            f"{len(scenario.relay_names)}"
        )
    client_list = list(clients) if clients is not None else scenario.client_names
    units = []
    for client in client_list:
        rotation = list(scenario.relay_names)
        rng = scenario.bank.generator("mhttp-rotation", client)
        rng.shuffle(rotation)
        for j in range(repetitions):
            mode = MHTTP_MODES[j % len(MHTTP_MODES)]
            for k in k_list:
                # Adjacent slice of the rotation: the k=2 primary relay is
                # a prefix of every larger set, so one crash coordinate
                # degrades all of the slot's units identically.
                offered = tuple(
                    rotation[(j + i) % len(rotation)] for i in range(k - 1)
                )
                for mechanism in MHTTP_MECHANISMS:
                    units.append(
                        WorkUnit(
                            index=len(units),
                            study=study,
                            client=client,
                            site=site,
                            repetition=j,
                            start_time=j * interval,
                            offered=offered,
                            variant=f"{mechanism}{k}+{mode}",
                            runner="mhttp",
                        )
                    )
    return CampaignPlan(
        study=study,
        scenario_spec=scenario.spec,
        seed=scenario.bank.root_seed,
        config=config,
        units=tuple(units),
        extra=params,
    )


def run_mhttp_unit(
    scenario: Scenario,
    config: SessionConfig,
    unit,
    params: Optional[MhttpStudyParams],
) -> StripeRecord:
    """Execute one mHTTP-study unit on a freshly degraded scenario.

    The direct control re-runs on the *same* degraded scenario, then the
    unit's mechanism runs over its offered relays: select-one with the
    resilient protocol, or a striped session.  The crashed relay in
    ``node`` mode is the primary offered relay - for select-one the likely
    probe winner, for the stripe a full lane of payload - which is exactly
    the head-to-head the study exists for.
    """
    if params is None:
        params = MhttpStudyParams()
    mechanism, k, mode = parse_mhttp_variant(unit.variant)
    if len(unit.offered) != k - 1:
        raise ValueError(
            f"unit variant {unit.variant!r} wants {k - 1} relays but the "
            f"offered set has {len(unit.offered)}"
        )
    outage_plan = mhttp_outage_plan(
        scenario,
        params,
        client=unit.client,
        site=unit.site,
        relay=unit.offered[0],
        mode=mode,
        start_time=unit.start_time,
    )
    degraded = scenario.with_outages(outage_plan) if outage_plan else scenario
    all_outages = [o for outages in outage_plan.values() for o in outages]

    control = degraded.universe(unit.start_time, config=config)
    ctrl = control.session.download_direct(unit.client, unit.site, degraded.resource)

    if mechanism == "select":
        selector = degraded.universe(
            unit.start_time,
            config=config,
            noise_labels=(unit.study, unit.client, unit.site, unit.repetition),
        )
        sel = selector.session.download(
            unit.client, unit.site, degraded.resource, list(unit.offered)
        )
        events = sel.recovery_events
        interval = (sel.requested_at, sel.completed_at)
        mech_fields = dict(
            selected_via=sel.selected_via,
            selected_throughput=sel.transfer_throughput,
            end_to_end_throughput=sel.end_to_end_throughput,
            probe_overhead=sel.probe_overhead_seconds,
            outcome=sel.outcome.value,
            n_path_failures=sum(1 for e in events if e.kind == "failover"),
            bytes_received=sel.delivered,
            selected_duration=sel.duration,
        )
    else:
        striper = degraded.universe(unit.start_time, config=config)
        res = striper.session.download_striped(
            unit.client,
            unit.site,
            degraded.resource,
            list(unit.offered),
            stripe=params.stripe_config(),
        )
        events = res.recovery_events
        interval = (res.requested_at, res.completed_at)
        mech_fields = dict(
            selected_via=None,
            # A stripe has no probe/bulk split: its one throughput is the
            # whole-session goodput, recorded in both columns.
            selected_throughput=res.end_to_end_throughput,
            end_to_end_throughput=res.end_to_end_throughput,
            probe_overhead=0.0,
            outcome=res.outcome.value,
            n_path_failures=len(res.failed_paths),
            bytes_received=res.delivered,
            selected_duration=res.duration,
            block_bytes=res.block_bytes,
            n_blocks=res.n_blocks,
            wasted_bytes=res.wasted_bytes,
            n_reissues=res.n_reissues,
            n_duplicate_blocks=res.n_duplicate_blocks,
            bytes_by_path=res.bytes_by_path,
        )

    overlap = any(o.overlaps(*interval) for o in all_outages)
    return StripeRecord(
        study=unit.study,
        client=unit.client,
        site=unit.site,
        repetition=unit.repetition,
        start_time=unit.start_time,
        set_size=len(unit.offered),
        offered=unit.offered,
        direct_throughput=ctrl.end_to_end_throughput,
        file_bytes=ctrl.size,
        mechanism=mechanism,
        stripe_k=k,
        failure_mode=mode,
        direct_outcome=ctrl.outcome.value,
        direct_duration=ctrl.duration,
        outage_overlap=overlap,
        recovery_events=events,
        **mech_fields,
    )
