"""Scenario assembly: catalogues + calibration -> a runnable test-bed.

A :class:`Scenario` is the simulated analogue of the paper's PlanetLab
deployment: topology with sampled capacity traces, origin servers with the
target file, deployed relay proxies, and per-client ground-truth profiles.

Because capacity traces are sampled once at build time, any number of
"universes" (simulator + fluid network pairs) can be opened on the same
scenario at arbitrary start times and observe identical network conditions -
this is how the control (direct-only) client and the selecting client are
compared without interfering, mirroring the paper's concurrent process pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.session import SessionConfig, TransferSession
from repro.http.server import WebServer
from repro.net.node import Node, NodeKind
from repro.net.topology import Topology, wan_link_name
from repro.overlay.paths import OverlayPathBuilder
from repro.overlay.registry import RelayRegistry
from repro.sim.simulator import Simulator
from repro.tcp.fluid import FluidNetwork
from repro.util.rng import SeedBank
from repro.util.units import HOUR, mb
from repro.workloads.calibration import (
    Calibrator,
    CalibrationParams,
    DEFAULT_SITE_PROFILES,
    SiteProfile,
)
from repro.workloads.planetlab import (
    CLIENT_CATALOG,
    CatalogEntry,
    RELAY_CATALOG,
    SECTION4_CLIENTS,
    SECTION4_RELAY_CATALOG,
    SITES,
)
from repro.workloads.profiles import ClientProfile, ThroughputClass

__all__ = ["ScenarioSpec", "Scenario", "Universe"]

#: Resource path served by every site.
RESOURCE_PATH = "/content/large-file"


def _stratified_classes(
    names: Sequence[str], params: CalibrationParams, bank: SeedBank
) -> Dict[str, ThroughputClass]:
    """Assign throughput classes by quota: round(n * P(class)) of each.

    Rounding residue goes to LOW, matching the paper's observation that
    international clients "generally fall into the Low throughput" bucket.
    The name -> class mapping is a seeded shuffle, so it varies with the
    scenario seed while the composition stays fixed.
    """
    n = len(names)
    n_med = int(round(n * params.class_probs[1]))
    n_high = int(round(n * params.class_probs[2]))
    n_low = n - n_med - n_high
    if n_low < 0:
        raise ValueError("class probabilities leave no room for Low clients")
    classes = (
        [ThroughputClass.LOW] * n_low
        + [ThroughputClass.MEDIUM] * n_med
        + [ThroughputClass.HIGH] * n_high
    )
    order = list(names)
    bank.generator("class-plan").shuffle(order)
    return dict(zip(order, classes))


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of a test-bed to build."""

    clients: Tuple[CatalogEntry, ...]
    relays: Tuple[CatalogEntry, ...]
    sites: Tuple[str, ...]
    horizon: float
    file_bytes: float
    params: CalibrationParams = CalibrationParams()
    #: Optional per-client forced throughput class (e.g. §4's Low/Medium
    #: clients); unforced clients draw their class from ``params``.
    forced_classes: Dict[str, ThroughputClass] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.clients or not self.relays or not self.sites:
            raise ValueError("spec needs at least one client, relay and site")
        if self.horizon <= 0.0:
            raise ValueError("horizon must be positive")
        if self.file_bytes <= 0.0:
            raise ValueError("file_bytes must be positive")
        unknown = [s for s in self.sites if s not in DEFAULT_SITE_PROFILES]
        if unknown:
            raise ValueError(f"sites without profiles: {unknown}")

    @classmethod
    def section2(
        cls,
        *,
        sites: Sequence[str] = SITES,
        horizon: float = 11.0 * HOUR,
        file_bytes: float = mb(8),
        params: CalibrationParams = CalibrationParams(),
    ) -> "ScenarioSpec":
        """The §2-3 deployment: 22 international clients, 21 US relays."""
        return cls(
            clients=CLIENT_CATALOG,
            relays=RELAY_CATALOG,
            sites=tuple(sites),
            horizon=horizon,
            file_bytes=file_bytes,
            params=params,
        )

    @classmethod
    def section4(
        cls,
        *,
        horizon: float = 6.5 * HOUR,
        file_bytes: float = mb(2),
        params: CalibrationParams = CalibrationParams(),
    ) -> "ScenarioSpec":
        """The §4 deployment: Duke/Italy/Sweden clients, 35 US relays.

        The paper picked these clients because they fall in the Low or
        Medium categories; we force that assignment.
        """
        return cls(
            clients=SECTION4_CLIENTS,
            relays=SECTION4_RELAY_CATALOG,
            sites=("eBay",),
            horizon=horizon,
            file_bytes=file_bytes,
            params=params,
            forced_classes={
                "Duke": ThroughputClass.MEDIUM,
                "Italy": ThroughputClass.MEDIUM,
                "Sweden": ThroughputClass.LOW,
            },
        )


@dataclass
class Universe:
    """One independent simulation world over a scenario's shared traces."""

    sim: Simulator
    network: FluidNetwork
    session: TransferSession


class Scenario:
    """A fully built test-bed ready to open universes on.

    Use :meth:`build` rather than the constructor.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        topology: Topology,
        builder: OverlayPathBuilder,
        servers: Dict[str, WebServer],
        profiles: Dict[str, ClientProfile],
        relay_quality: Dict[str, float],
        bank: SeedBank,
    ):
        self.spec = spec
        self.topology = topology
        self.builder = builder
        self.servers = servers
        self.profiles = profiles
        self.relay_quality = relay_quality
        self.bank = bank

    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, spec: ScenarioSpec, *, seed: int = 20070326) -> "Scenario":
        """Materialise a scenario: draw profiles, sample traces, wire it up."""
        bank = SeedBank(seed)
        cal = Calibrator(spec.params, bank.child("calibration"))
        horizon = spec.horizon

        topo = Topology()
        servers: Dict[str, WebServer] = {}
        registry = RelayRegistry()
        profiles: Dict[str, ClientProfile] = {}
        relay_q: Dict[str, float] = {}

        def sample(process, *labels):
            rng = bank.generator("trace", *labels)
            return process.sample(horizon, rng)

        # Sites: server node + access pipe + the published resource.
        for site_name in spec.sites:
            site = DEFAULT_SITE_PROFILES[site_name]
            topo.add_node(Node(site_name, NodeKind.SERVER, region="us"))
            topo.add_access_link(
                site_name, sample(cal.server_access_process(site), "access", site_name)
            )
            server = WebServer(site_name)
            server.publish(RESOURCE_PATH, int(spec.file_bytes))
            servers[site_name] = server

        # Relays: node + access + proxy deployment.
        for entry in spec.relays:
            topo.add_node(
                Node(entry.name, NodeKind.RELAY, region=entry.region, hostname=entry.hostname)
            )
            topo.add_access_link(
                entry.name, sample(cal.relay_access_process(entry.name), "access", entry.name)
            )
            registry.deploy(entry.name)
            relay_q[entry.name] = cal.relay_quality(entry.name)

        # Clients: profile draw + node + access.  Throughput classes are
        # assigned by stratified quota (seeded shuffle) rather than
        # independent per-client draws, so every build has the intended
        # Low/Medium/High composition regardless of seed; explicit
        # forced_classes (e.g. §4's Low/Medium clients) take precedence.
        class_plan = _stratified_classes(
            [e.name for e in spec.clients], spec.params, bank
        )
        for entry in spec.clients:
            profile = cal.client_profile(
                entry.name,
                forced_class=spec.forced_classes.get(
                    entry.name, class_plan[entry.name]
                ),
            )
            profiles[entry.name] = profile
            topo.add_node(
                Node(entry.name, NodeKind.CLIENT, region=entry.region, hostname=entry.hostname)
            )
            topo.add_access_link(
                entry.name, sample(cal.client_access_process(profile), "access", entry.name)
            )

        # WAN segments (data direction).
        for site_name in spec.sites:
            site = DEFAULT_SITE_PROFILES[site_name]
            for entry in spec.clients:
                profile = profiles[entry.name]
                topo.add_wan_link(
                    site_name,
                    entry.name,
                    sample(
                        cal.direct_wan_process(profile, site), "direct", site_name, entry.name
                    ),
                )
            for relay in spec.relays:
                topo.add_wan_link(
                    site_name,
                    relay.name,
                    sample(
                        cal.relay_server_process(relay.name, site),
                        "relay-server",
                        site_name,
                        relay.name,
                    ),
                )
        for relay in spec.relays:
            for entry in spec.clients:
                profile = profiles[entry.name]
                topo.add_wan_link(
                    relay.name,
                    entry.name,
                    sample(
                        cal.overlay_wan_process(profile, relay.name, relay_q[relay.name]),
                        "overlay",
                        relay.name,
                        entry.name,
                    ),
                )

        for server in servers.values():
            registry.register_origin_everywhere(server)
        topo.validate()

        builder = OverlayPathBuilder(topo, registry, servers)
        return cls(spec, topo, builder, servers, profiles, relay_q, bank)

    # ------------------------------------------------------------------ #
    @property
    def resource(self) -> str:
        """Path of the large file published on every site."""
        return RESOURCE_PATH

    @property
    def client_names(self) -> List[str]:
        return [e.name for e in self.spec.clients]

    @property
    def relay_names(self) -> List[str]:
        return [e.name for e in self.spec.relays]

    @property
    def site_names(self) -> List[str]:
        return list(self.spec.sites)

    def universe(
        self,
        start_time: float,
        *,
        config: SessionConfig = SessionConfig(),
        noise_labels: Tuple = (),
    ) -> Universe:
        """Open an independent simulation world at ``start_time``.

        The world shares the scenario's immutable capacity traces, so two
        universes opened at the same time observe identical conditions.
        ``noise_labels`` seed the session's probe-measurement jitter (only
        needed when ``config.probe_noise_sigma > 0``); pass a stable label
        path such as ``(study, client, repetition)`` so individual
        measurements are reproducible in isolation.
        """
        if start_time < 0.0:
            raise ValueError(f"start_time must be >= 0, got {start_time}")
        sim = Simulator(start_time=start_time)
        network = FluidNetwork(sim)
        rng = None
        if config.probe_noise_sigma > 0.0:
            rng = self.bank.generator("probe-noise", *noise_labels)
        session = TransferSession(network, self.builder, config, rng=rng)
        return Universe(sim=sim, network=network, session=session)

    def with_outages(self, outages_by_link: Dict[str, Sequence]) -> "Scenario":
        """A what-if copy of this scenario with link outages injected.

        ``outages_by_link`` maps canonical link names (e.g.
        ``wan_link_name("eBay", "Italy")``) to sequences of
        :class:`~repro.net.failures.Outage`.  Everything else - profiles,
        servers, relays, seeds - is shared with the original.
        """
        from repro.net.failures import apply_outages

        unknown = [name for name in outages_by_link if name not in
                   {l.name for l in self.topology.links}]
        if unknown:
            raise KeyError(f"unknown links in outage plan: {unknown}")

        def transform(link):
            outages = outages_by_link.get(link.name, ())
            return apply_outages(link.trace, list(outages))

        topology = self.topology.copy_with_traces(transform)
        builder = OverlayPathBuilder(topology, self.builder.registry, self.servers)
        return Scenario(
            self.spec,
            topology,
            builder,
            self.servers,
            self.profiles,
            self.relay_quality,
            self.bank,
        )

    def with_faults(self, windows_by_link: Dict[str, Sequence]) -> "Scenario":
        """A what-if copy of this scenario with chaos fault windows injected.

        The generalisation of :meth:`with_outages`: ``windows_by_link``
        maps canonical link names to sequences of
        :class:`~repro.chaos.faults.FaultWindow`, so gray (fractional)
        degradation and blackouts compose in one plan.  Everything else -
        profiles, servers, relays, seeds - is shared with the original.
        """
        from repro.chaos.faults import apply_fault_windows

        unknown = [name for name in windows_by_link if name not in
                   {l.name for l in self.topology.links}]
        if unknown:
            raise KeyError(f"unknown links in fault plan: {unknown}")

        def transform(link):
            windows = windows_by_link.get(link.name, ())
            return apply_fault_windows(link.trace, list(windows))

        topology = self.topology.copy_with_traces(transform)
        builder = OverlayPathBuilder(topology, self.builder.registry, self.servers)
        return Scenario(
            self.spec,
            topology,
            builder,
            self.servers,
            self.profiles,
            self.relay_quality,
            self.bank,
        )

    def mean_overlay_capacity(self, client: str, relay: str) -> float:
        """Time-averaged relay->client overlay capacity (for a-priori ranking)."""
        link = self.topology.link(wan_link_name(relay, client))
        return link.trace.mean_over(0.0, self.spec.horizon)

    def good_static_relay(self, client: str, *, rank: int = 2) -> str:
        """The paper's "a good one, though not necessarily the best" relay.

        Relays are ranked by mean overlay capacity toward ``client``;
        ``rank`` = 0 is the best.  The default picks the third best - good
        but deliberately not optimal, like the paper's a-priori choice.
        """
        ranked = sorted(
            self.relay_names,
            key=lambda r: self.mean_overlay_capacity(client, r),
            reverse=True,
        )
        return ranked[min(rank, len(ranked) - 1)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scenario(clients={len(self.client_names)}, relays={len(self.relay_names)}, "
            f"sites={self.site_names}, horizon={self.spec.horizon / HOUR:.1f}h)"
        )
