"""Calibration sensitivity analysis.

The reproduction's absolute numbers come from a calibrated generative model
(:class:`~repro.workloads.calibration.CalibrationParams`).  A fair question
is whether the *conclusions* depend on the calibration point.  This module
runs the same §2-style campaign slice across perturbed parameter sets and
summarises the headline statistics of each, so the robustness of the
qualitative story (substantial utilisation, solidly positive conditional
improvement, small penalty tail) can be asserted mechanically - ablation
bench A12.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.workloads.calibration import CalibrationParams
from repro.workloads.experiment import Section2Study
from repro.workloads.scenario import Scenario, ScenarioSpec

__all__ = ["SensitivityPoint", "default_variants", "calibration_sensitivity"]


@dataclass(frozen=True)
class SensitivityPoint:
    """Headline statistics for one calibration variant."""

    label: str
    n_transfers: int
    utilization: float
    positive_given_indirect: float
    mean_improvement: float
    median_improvement: float
    penalty_fraction: float

    @property
    def conclusion_holds(self) -> bool:
        """The paper's qualitative story at this calibration point:
        meaningful utilisation, mostly-positive selections, positive mean."""
        return (
            self.utilization >= 0.15
            and self.positive_given_indirect >= 0.7
            and self.mean_improvement > 0.0
        )


def default_variants(
    base: Optional[CalibrationParams] = None,
) -> Dict[str, CalibrationParams]:
    """Perturbations of the calibrated point along its main axes."""
    base = base or CalibrationParams()
    lo, mid, hi = base.overlay_scale_medians
    return {
        "calibrated": base,
        "overlay -15%": dataclasses.replace(
            base, overlay_scale_medians=(0.85 * lo, 0.85 * mid, 0.85 * hi)
        ),
        "overlay +15%": dataclasses.replace(
            base, overlay_scale_medians=(1.15 * lo, 1.15 * mid, 1.15 * hi)
        ),
        "relays more alike": dataclasses.replace(base, relay_quality_sigma=0.09),
        "relays more diverse": dataclasses.replace(base, relay_quality_sigma=0.30),
        "slower dynamics": dataclasses.replace(
            base,
            high_var_holding=tuple(2.0 * h for h in base.high_var_holding),
            low_var_holding=tuple(2.0 * h for h in base.low_var_holding),
        ),
        "faster dynamics": dataclasses.replace(
            base,
            high_var_holding=tuple(0.5 * h for h in base.high_var_holding),
            low_var_holding=tuple(0.5 * h for h in base.low_var_holding),
        ),
    }


def calibration_sensitivity(
    variants: Dict[str, CalibrationParams],
    *,
    seed: int = 2007,
    clients: Optional[Sequence[str]] = None,
    repetitions: int = 12,
) -> List[SensitivityPoint]:
    """Run the campaign slice under each variant; return one point each."""
    points: List[SensitivityPoint] = []
    for label, params in variants.items():
        spec = ScenarioSpec.section2(sites=("eBay",), params=params)
        scenario = Scenario.build(spec, seed=seed)
        study = Section2Study(scenario, repetitions=repetitions)
        store = study.run(sites=["eBay"], clients=list(clients) if clients else None)

        imps = store.column("improvement_percent")
        indirect = store.column("used_indirect")
        chosen = imps[indirect] if indirect.any() else np.array([])
        points.append(
            SensitivityPoint(
                label=label,
                n_transfers=len(store),
                utilization=float(np.mean(indirect)),
                positive_given_indirect=(
                    float(np.mean(chosen > 0)) if chosen.size else float("nan")
                ),
                mean_improvement=(
                    float(np.mean(chosen)) if chosen.size else float("nan")
                ),
                median_improvement=(
                    float(np.median(chosen)) if chosen.size else float("nan")
                ),
                penalty_fraction=(
                    float(np.mean(chosen < 0)) if chosen.size else float("nan")
                ),
            )
        )
    return points
