"""Workloads: PlanetLab catalogues, calibration, scenarios, study drivers."""

from repro.workloads.calibration import (
    Calibrator,
    CalibrationParams,
    DEFAULT_SITE_PROFILES,
    SiteProfile,
)
from repro.workloads.counterfactual import (
    CounterfactualRecord,
    run_counterfactual_study,
    run_counterfactual_transfer,
)
from repro.workloads.failures import (
    FAILURE_MODES,
    FAILURES_RESILIENCE,
    FAILURES_SESSION_CONFIG,
    FailureStudy,
    FailureStudyParams,
    FailureTransferRecord,
    MaskingStats,
    failure_outage_plan,
    plan_failures,
    run_failure_unit,
)
from repro.workloads.monitored import MonitoredStudy
from repro.workloads.contention import ContentionSpec, run_contended_pair
from repro.workloads.experiment import (
    SECTION4_SESSION_CONFIG,
    STUDY_SESSION_CONFIG,
    Section2Study,
    Section4Study,
    run_interfering_pair,
    run_paired_transfer,
)
from repro.workloads.planetlab import (
    CLIENT_CATALOG,
    CatalogEntry,
    DEFAULT_SITE,
    EXTRA_RELAY_CATALOG,
    RELAY_CATALOG,
    SECTION4_CLIENTS,
    SECTION4_RELAY_CATALOG,
    SITES,
)
from repro.workloads.profiles import ClientProfile, ThroughputClass, Variability
from repro.workloads.scenario import Scenario, ScenarioSpec, Universe
from repro.workloads.sweeps import (
    SensitivityPoint,
    calibration_sensitivity,
    default_variants,
)

__all__ = [
    "CatalogEntry",
    "CLIENT_CATALOG",
    "RELAY_CATALOG",
    "EXTRA_RELAY_CATALOG",
    "SECTION4_RELAY_CATALOG",
    "SECTION4_CLIENTS",
    "SITES",
    "DEFAULT_SITE",
    "ThroughputClass",
    "Variability",
    "ClientProfile",
    "CalibrationParams",
    "Calibrator",
    "SiteProfile",
    "DEFAULT_SITE_PROFILES",
    "ScenarioSpec",
    "Scenario",
    "Universe",
    "Section2Study",
    "Section4Study",
    "run_paired_transfer",
    "run_interfering_pair",
    "STUDY_SESSION_CONFIG",
    "SECTION4_SESSION_CONFIG",
    "CounterfactualRecord",
    "run_counterfactual_transfer",
    "run_counterfactual_study",
    "FailureStudy",
    "FailureTransferRecord",
    "MaskingStats",
    "FAILURE_MODES",
    "FAILURES_RESILIENCE",
    "FAILURES_SESSION_CONFIG",
    "FailureStudyParams",
    "failure_outage_plan",
    "plan_failures",
    "run_failure_unit",
    "MonitoredStudy",
    "SensitivityPoint",
    "calibration_sensitivity",
    "default_variants",
    "ContentionSpec",
    "run_contended_pair",
]
