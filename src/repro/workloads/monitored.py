"""RON-style monitored operation: route from background state, never probe.

The paper's mechanism measures *at transfer time*; RON (ref [1]) instead
monitors all paths continuously and routes from the freshest table entry.
:class:`MonitoredStudy` runs the RON mode on our substrate:

* one long-lived universe per client, with a :class:`PathMonitor`
  background-probing the direct path and every relay;
* at each scheduled transfer, the client fetches the whole file over the
  monitor's current best path (no selection probe);
* the control client runs in a separate clean universe as usual.

Comparing the resulting records against the probe-per-transfer study
quantifies the freshness-vs-overhead trade-off between the two designs
(ablation bench A9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.session import SessionConfig
from repro.overlay.monitor import PathMonitor
from repro.trace.records import TransferRecord
from repro.trace.store import TraceStore
from repro.util.units import kb
from repro.workloads.experiment import STUDY_SESSION_CONFIG
from repro.workloads.scenario import Scenario

__all__ = ["MonitoredStudy"]


@dataclass
class MonitoredStudy:
    """Background-monitoring selection over a §2-style schedule.

    Parameters
    ----------
    scenario:
        The test-bed.
    repetitions / interval:
        Per-client transfer schedule.
    monitor_period:
        Seconds between probes of the same path.
    monitor_probe_bytes:
        Size of each background probe.
    config:
        TCP parameters for the foreground transfers.
    """

    scenario: Scenario
    repetitions: int = 15
    interval: float = 360.0
    monitor_period: float = 120.0
    monitor_probe_bytes: float = kb(30)
    config: SessionConfig = STUDY_SESSION_CONFIG

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.interval <= 0.0:
            raise ValueError("interval must be positive")
        needed = self.repetitions * self.interval
        if needed > self.scenario.spec.horizon:
            raise ValueError(
                f"schedule needs {needed:.0f}s but horizon is "
                f"{self.scenario.spec.horizon:.0f}s"
            )

    def run(
        self,
        *,
        clients: Optional[Sequence[str]] = None,
        site: str = "eBay",
    ) -> TraceStore:
        """Run the monitored campaign; one record per paired transfer.

        ``probe_overhead`` in the records carries the *amortised* background
        monitoring time per transfer (monitoring bytes divided by the
        client's mean direct throughput), so overhead comparisons against
        the probe-per-transfer mechanism stay meaningful.
        """
        clients = list(clients) if clients is not None else self.scenario.client_names
        store = TraceStore()
        for client in clients:
            store.extend(self._run_client(client, site))
        return store

    # ------------------------------------------------------------------ #
    def _run_client(self, client: str, site: str) -> List[TransferRecord]:
        scenario = self.scenario
        profile = scenario.profiles[client]
        horizon = self.repetitions * self.interval + self.interval

        # The monitored universe lives across the whole schedule.
        universe = scenario.universe(0.0, config=self.config)
        paths = [scenario.builder.direct(client, site)] + scenario.builder.all_indirect(
            client, site
        )
        monitor = PathMonitor(
            universe.network,
            paths,
            scenario.resource,
            period=self.monitor_period,
            probe_bytes=self.monitor_probe_bytes,
            tcp=self.config.tcp,
            horizon=horizon,
        )
        monitor.start()
        # Warm the table: let one full probing round complete.
        universe.sim.run(until=self.monitor_period)

        records: List[TransferRecord] = []
        for j in range(self.repetitions):
            start = self.monitor_period + j * self.interval
            universe.sim.run(until=start)

            best = monitor.best_path()
            relay = None if best in (None, "direct") else best
            result = universe.session.download_via(
                client, site, scenario.resource, relay
            )

            control = scenario.universe(start, config=self.config)
            ctrl = control.session.download_direct(client, site, scenario.resource)

            monitoring_bytes = monitor.probe_bytes_sent / max(j + 1, 1)
            amortised_overhead = monitoring_bytes / max(
                ctrl.transfer_throughput, 1.0
            )
            records.append(
                TransferRecord(
                    study="monitored",
                    client=client,
                    site=site,
                    repetition=j,
                    start_time=start,
                    set_size=len(scenario.relay_names),
                    offered=tuple(scenario.relay_names),
                    selected_via=relay,
                    direct_throughput=ctrl.transfer_throughput,
                    selected_throughput=result.transfer_throughput,
                    end_to_end_throughput=result.end_to_end_throughput,
                    probe_overhead=amortised_overhead,
                    file_bytes=result.size,
                    direct_class=profile.throughput_class.value,
                    direct_variability=profile.variability.value,
                )
            )
        return records
