"""Failure-masking study: indirect routing under direct-path outages.

The related work the paper builds on (RON, one-hop source routing, MONET)
is about *availability*: a one-hop detour recovers from most path failures.
The paper's throughput-probe mechanism masks failures for free - a dead
direct path cannot win (or even finish) the probe race - so this study
quantifies that inherited property on our substrate:

* inject Poisson outages on each studied client's direct WAN segment;
* run the paired control/selector schedule over the degraded scenario;
* compare transfer durations on outage-affected transfers.

A transfer is *affected* when its control (direct-only) execution overlaps
an outage; it is *masked* when the selecting client finished in at most
``masked_fraction`` of the control's time.

The second half of the module is the runner-integrated **availability
study** (`repro failures`): :func:`plan_failures` decomposes it into
fingerprinted :class:`~repro.runner.plan.WorkUnit`\\ s cycling through the
injection modes (healthy, direct-link flap, relay crash, both) and
:func:`run_failure_unit` executes one unit with the *resilient* protocol
(probe deadline, mid-transfer failover, transfer deadline) enabled, emitting
:class:`~repro.trace.records.FailureRecord` rows for
:mod:`repro.analysis.availability`.  Every random draw is derived from
per-unit seed-bank labels, so the study is byte-identical for any worker
count or execution order.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import math

import numpy as np

from repro.core.resilience import ResilienceConfig, recovery_time_of
from repro.core.session import SessionConfig
from repro.net.failures import (
    Outage,
    OutageGenerator,
    merge_outage_plans,
    node_outage_plan,
)
from repro.net.topology import wan_link_name
from repro.trace.records import FailureRecord
from repro.workloads.experiment import STUDY_SESSION_CONFIG
from repro.workloads.scenario import Scenario

__all__ = [
    "FailureTransferRecord",
    "FailureStudy",
    "MaskingStats",
    "FAILURE_MODES",
    "FAILURES_RESILIENCE",
    "FAILURES_SESSION_CONFIG",
    "FailureStudyParams",
    "failure_outage_plan",
    "plan_failures",
    "run_failure_unit",
]


@dataclass(frozen=True)
class FailureTransferRecord:
    """One paired measurement on an outage-injected scenario."""

    client: str
    site: str
    repetition: int
    start_time: float
    relay: str
    selected_via: Optional[str]
    direct_duration: float
    selected_duration: float
    outage_overlap: bool

    @property
    def speedup(self) -> float:
        """Control duration / selector duration (>1 = selector faster).

        NaN when either duration is non-positive (a degenerate zero-time
        transfer has no meaningful ratio) - never raises.
        """
        if self.selected_duration <= 0.0 or self.direct_duration <= 0.0:
            return math.nan
        return self.direct_duration / self.selected_duration


@dataclass(frozen=True)
class MaskingStats:
    """Aggregate failure-masking outcome."""

    n_transfers: int
    n_affected: int
    n_masked: int
    mean_affected_speedup: float

    @property
    def masking_rate(self) -> float:
        """Fraction of outage-affected transfers that were masked.

        MONET reports avoiding 60-94% of observed failures; this is the
        comparable number for our mechanism.
        """
        if self.n_affected == 0:
            return float("nan")
        return self.n_masked / self.n_affected


@dataclass
class FailureStudy:
    """Outage injection + paired schedule for a set of clients.

    Parameters
    ----------
    scenario:
        The healthy scenario (it is never mutated).
    generator:
        Outage process applied to each studied client's direct WAN link.
    repetitions / interval:
        The per-client transfer schedule.
    masked_fraction:
        A transfer counts as masked when the selector finished in at most
        this fraction of the control's duration.
    """

    scenario: Scenario
    generator: OutageGenerator = OutageGenerator(mtbf=1200.0, mean_duration=120.0)
    repetitions: int = 20
    interval: float = 360.0
    config: SessionConfig = STUDY_SESSION_CONFIG
    masked_fraction: float = 0.7

    def outages_for(self, client: str, site: str) -> List[Outage]:
        """The seeded outage schedule for one direct path."""
        rng = self.scenario.bank.generator("outages", client, site)
        return self.generator.sample(self.scenario.spec.horizon, rng)

    def run(
        self,
        *,
        clients: Optional[Sequence[str]] = None,
        site: str = "eBay",
    ) -> List[FailureTransferRecord]:
        """Run the study; returns one record per paired transfer."""
        clients = list(clients) if clients is not None else self.scenario.client_names
        records: List[FailureTransferRecord] = []
        for client in clients:
            outages = self.outages_for(client, site)
            degraded = self.scenario.with_outages(
                {wan_link_name(site, client): outages}
            )
            rotation = list(degraded.relay_names)
            rng = degraded.bank.generator("failure-rotation", client)
            rng.shuffle(rotation)
            for j in range(self.repetitions):
                start = j * self.interval
                relay = rotation[j % len(rotation)]

                control = degraded.universe(start, config=self.config)
                ctrl = control.session.download_direct(client, site, degraded.resource)

                selector = degraded.universe(
                    start,
                    config=self.config,
                    noise_labels=("failures", client, site, j),
                )
                sel = selector.session.download(
                    client, site, degraded.resource, [relay]
                )

                overlap = any(
                    o.overlaps(ctrl.requested_at, ctrl.completed_at) for o in outages
                )
                records.append(
                    FailureTransferRecord(
                        client=client,
                        site=site,
                        repetition=j,
                        start_time=start,
                        relay=relay,
                        selected_via=sel.selected_via,
                        direct_duration=ctrl.duration,
                        selected_duration=sel.duration,
                        outage_overlap=overlap,
                    )
                )
        return records

    def masking_stats(self, records: Sequence[FailureTransferRecord]) -> MaskingStats:
        """Summarise how often outage pain was avoided."""
        affected = [r for r in records if r.outage_overlap]
        masked = [
            r
            for r in affected
            if r.selected_duration <= self.masked_fraction * r.direct_duration
        ]
        speedups = [r.speedup for r in affected if math.isfinite(r.speedup)]
        return MaskingStats(
            n_transfers=len(records),
            n_affected=len(affected),
            n_masked=len(masked),
            mean_affected_speedup=float(np.mean(speedups)) if speedups else float("nan"),
        )


# --------------------------------------------------------------------------- #
# runner-integrated availability study (`repro failures`)
# --------------------------------------------------------------------------- #
#: Injection modes the study cycles through, one per repetition slot.
FAILURE_MODES = ("none", "link", "node", "both")

#: The resilient protocol configuration the availability study runs with:
#: probes give up after 30 s, stalled bulk phases fail over, and a whole
#: session is bounded at 30 simulated minutes.
FAILURES_RESILIENCE = ResilienceConfig(
    probe_deadline=30.0,
    failover=True,
    transfer_deadline=1800.0,
)

FAILURES_SESSION_CONFIG = dataclasses.replace(
    STUDY_SESSION_CONFIG, resilience=FAILURES_RESILIENCE
)


@dataclass(frozen=True)
class FailureStudyParams:
    """Plan-level parameters of the availability study.

    Shipped to every worker inside the plan (``CampaignPlan.extra``) and
    hashed into the fingerprint, so two runs with different failure
    processes can never share a checkpoint.  Link flaps hit the client's
    direct WAN segment; node crashes take down every WAN segment through
    the crashed relay at once.
    """

    link_mtbf: float = 900.0
    link_mean_duration: float = 150.0
    node_mtbf: float = 1800.0
    node_mean_duration: float = 240.0

    def link_generator(self) -> OutageGenerator:
        return OutageGenerator(mtbf=self.link_mtbf, mean_duration=self.link_mean_duration)

    def node_generator(self) -> OutageGenerator:
        return OutageGenerator(mtbf=self.node_mtbf, mean_duration=self.node_mean_duration)


def failure_outage_plan(
    scenario: Scenario,
    params: FailureStudyParams,
    *,
    client: str,
    site: str,
    relay: str,
    mode: str,
) -> Dict[str, List[Outage]]:
    """The per-link outage map one unit injects, drawn from stable labels.

    Link-flap outages depend only on ``(client, site)`` and relay-crash
    outages only on ``relay``, so every unit that shares a coordinate sees
    the *same* failure environment regardless of worker count or execution
    order - the property the runner's determinism contract requires.
    """
    if mode not in FAILURE_MODES:
        raise ValueError(f"unknown failure mode {mode!r}; expected {FAILURE_MODES}")
    horizon = scenario.spec.horizon
    plans: List[Dict[str, List[Outage]]] = []
    if mode in ("link", "both"):
        rng = scenario.bank.generator("failures-link", client, site)
        outages = params.link_generator().sample(horizon, rng)
        if outages:
            plans.append({wan_link_name(site, client): outages})
    if mode in ("node", "both"):
        rng = scenario.bank.generator("failures-node", relay)
        outages = params.node_generator().sample(horizon, rng)
        if outages:
            plans.append(
                node_outage_plan(scenario.topology.links, relay, outages)
            )
    if not plans:
        return {}
    return merge_outage_plans(*plans)


def plan_failures(
    scenario: Scenario,
    *,
    repetitions: int,
    interval: float,
    config: SessionConfig = FAILURES_SESSION_CONFIG,
    params: FailureStudyParams = FailureStudyParams(),
    site: str = "eBay",
    clients: Optional[Sequence[str]] = None,
    study: str = "failures",
):
    """Decompose the availability study into a fingerprinted campaign plan.

    Each client runs ``repetitions`` paired transfers at ``interval``
    spacing, cycling through :data:`FAILURE_MODES`; the offered set is the
    two adjacent relays of the client's seeded rotation (one when the
    scenario has a single relay), so failover always has a probed runner-up
    to fall back on.  The unit's injection mode rides in
    :attr:`~repro.runner.plan.WorkUnit.variant` and the failure process
    parameters in ``CampaignPlan.extra``.
    """
    from repro.runner.plan import CampaignPlan, WorkUnit

    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    client_list = list(clients) if clients is not None else scenario.client_names
    units = []
    for client in client_list:
        rotation = list(scenario.relay_names)
        rng = scenario.bank.generator("failure-rotation", client)
        rng.shuffle(rotation)
        for j in range(repetitions):
            first = rotation[j % len(rotation)]
            second = rotation[(j + 1) % len(rotation)]
            offered = (first,) if second == first else (first, second)
            units.append(
                WorkUnit(
                    index=len(units),
                    study=study,
                    client=client,
                    site=site,
                    repetition=j,
                    start_time=j * interval,
                    offered=offered,
                    variant=FAILURE_MODES[j % len(FAILURE_MODES)],
                )
            )
    return CampaignPlan(
        study=study,
        scenario_spec=scenario.spec,
        seed=scenario.bank.root_seed,
        config=config,
        units=tuple(units),
        extra=params,
    )


def run_failure_unit(
    scenario: Scenario,
    config: SessionConfig,
    unit,
    params: Optional[FailureStudyParams],
) -> FailureRecord:
    """Execute one availability-study unit on a freshly degraded scenario.

    The control client re-runs the direct download on the *same* degraded
    scenario (so both sides face identical failures), and the selector runs
    the resilient protocol over the unit's offered relays.  The crashed
    relay in ``node``/``both`` modes is the unit's primary offered relay -
    the path most likely to have won the probe, which is exactly the case
    failover exists for.
    """
    if params is None:
        params = FailureStudyParams()
    mode = unit.variant or "none"
    outage_plan = failure_outage_plan(
        scenario,
        params,
        client=unit.client,
        site=unit.site,
        relay=unit.offered[0],
        mode=mode,
    )
    degraded = scenario.with_outages(outage_plan) if outage_plan else scenario
    all_outages = [o for outages in outage_plan.values() for o in outages]

    control = degraded.universe(unit.start_time, config=config)
    ctrl = control.session.download_direct(unit.client, unit.site, degraded.resource)

    selector = degraded.universe(
        unit.start_time,
        config=config,
        noise_labels=(unit.study, unit.client, unit.site, unit.repetition),
    )
    sel = selector.session.download(
        unit.client, unit.site, degraded.resource, list(unit.offered)
    )

    overlap = any(
        o.overlaps(ctrl.requested_at, ctrl.completed_at) for o in all_outages
    )
    events = sel.recovery_events
    return FailureRecord(
        study=unit.study,
        client=unit.client,
        site=unit.site,
        repetition=unit.repetition,
        start_time=unit.start_time,
        set_size=len(unit.offered),
        offered=unit.offered,
        selected_via=sel.selected_via,
        direct_throughput=ctrl.end_to_end_throughput,
        selected_throughput=sel.transfer_throughput,
        end_to_end_throughput=sel.end_to_end_throughput,
        probe_overhead=sel.probe_overhead_seconds,
        file_bytes=sel.size,
        failure_mode=mode,
        outcome=sel.outcome.value,
        direct_outcome=ctrl.outcome.value,
        n_failovers=sum(1 for e in events if e.kind == "failover"),
        n_reprobes=sum(1 for e in events if e.kind == "reprobe"),
        bytes_received=sel.delivered,
        direct_duration=ctrl.duration,
        selected_duration=sel.duration,
        time_to_recover=recovery_time_of(events),
        outage_overlap=overlap,
        recovery_events=events,
    )
