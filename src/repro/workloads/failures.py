"""Failure-masking study: indirect routing under direct-path outages.

The related work the paper builds on (RON, one-hop source routing, MONET)
is about *availability*: a one-hop detour recovers from most path failures.
The paper's throughput-probe mechanism masks failures for free - a dead
direct path cannot win (or even finish) the probe race - so this study
quantifies that inherited property on our substrate:

* inject Poisson outages on each studied client's direct WAN segment;
* run the paired control/selector schedule over the degraded scenario;
* compare transfer durations on outage-affected transfers.

A transfer is *affected* when its control (direct-only) execution overlaps
an outage; it is *masked* when the selecting client finished in at most
``masked_fraction`` of the control's time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.session import SessionConfig
from repro.net.failures import Outage, OutageGenerator
from repro.net.topology import wan_link_name
from repro.workloads.experiment import STUDY_SESSION_CONFIG
from repro.workloads.scenario import Scenario

__all__ = ["FailureTransferRecord", "FailureStudy", "MaskingStats"]


@dataclass(frozen=True)
class FailureTransferRecord:
    """One paired measurement on an outage-injected scenario."""

    client: str
    site: str
    repetition: int
    start_time: float
    relay: str
    selected_via: Optional[str]
    direct_duration: float
    selected_duration: float
    outage_overlap: bool

    @property
    def speedup(self) -> float:
        """Control duration / selector duration (>1 = selector faster)."""
        if self.selected_duration <= 0.0:
            raise ValueError("selected_duration must be positive")
        return self.direct_duration / self.selected_duration


@dataclass(frozen=True)
class MaskingStats:
    """Aggregate failure-masking outcome."""

    n_transfers: int
    n_affected: int
    n_masked: int
    mean_affected_speedup: float

    @property
    def masking_rate(self) -> float:
        """Fraction of outage-affected transfers that were masked.

        MONET reports avoiding 60-94% of observed failures; this is the
        comparable number for our mechanism.
        """
        if self.n_affected == 0:
            return float("nan")
        return self.n_masked / self.n_affected


@dataclass
class FailureStudy:
    """Outage injection + paired schedule for a set of clients.

    Parameters
    ----------
    scenario:
        The healthy scenario (it is never mutated).
    generator:
        Outage process applied to each studied client's direct WAN link.
    repetitions / interval:
        The per-client transfer schedule.
    masked_fraction:
        A transfer counts as masked when the selector finished in at most
        this fraction of the control's duration.
    """

    scenario: Scenario
    generator: OutageGenerator = OutageGenerator(mtbf=1200.0, mean_duration=120.0)
    repetitions: int = 20
    interval: float = 360.0
    config: SessionConfig = STUDY_SESSION_CONFIG
    masked_fraction: float = 0.7

    def outages_for(self, client: str, site: str) -> List[Outage]:
        """The seeded outage schedule for one direct path."""
        rng = self.scenario.bank.generator("outages", client, site)
        return self.generator.sample(self.scenario.spec.horizon, rng)

    def run(
        self,
        *,
        clients: Optional[Sequence[str]] = None,
        site: str = "eBay",
    ) -> List[FailureTransferRecord]:
        """Run the study; returns one record per paired transfer."""
        clients = list(clients) if clients is not None else self.scenario.client_names
        records: List[FailureTransferRecord] = []
        for client in clients:
            outages = self.outages_for(client, site)
            degraded = self.scenario.with_outages(
                {wan_link_name(site, client): outages}
            )
            rotation = list(degraded.relay_names)
            rng = degraded.bank.generator("failure-rotation", client)
            rng.shuffle(rotation)
            for j in range(self.repetitions):
                start = j * self.interval
                relay = rotation[j % len(rotation)]

                control = degraded.universe(start, config=self.config)
                ctrl = control.session.download_direct(client, site, degraded.resource)

                selector = degraded.universe(
                    start,
                    config=self.config,
                    noise_labels=("failures", client, site, j),
                )
                sel = selector.session.download(
                    client, site, degraded.resource, [relay]
                )

                overlap = any(
                    o.overlaps(ctrl.requested_at, ctrl.completed_at) for o in outages
                )
                records.append(
                    FailureTransferRecord(
                        client=client,
                        site=site,
                        repetition=j,
                        start_time=start,
                        relay=relay,
                        selected_via=sel.selected_via,
                        direct_duration=ctrl.duration,
                        selected_duration=sel.duration,
                        outage_overlap=overlap,
                    )
                )
        return records

    def masking_stats(self, records: Sequence[FailureTransferRecord]) -> MaskingStats:
        """Summarise how often outage pain was avoided."""
        affected = [r for r in records if r.outage_overlap]
        masked = [
            r
            for r in affected
            if r.selected_duration <= self.masked_fraction * r.direct_duration
        ]
        speedups = [r.speedup for r in affected]
        return MaskingStats(
            n_transfers=len(records),
            n_affected=len(affected),
            n_masked=len(masked),
            mean_affected_speedup=float(np.mean(speedups)) if speedups else float("nan"),
        )
