"""Contention-driven variability: explicit competing flows instead of traces.

The default scenarios encode background load *implicitly*: direct-path
capacity traces are Markov-modulated.  This module provides the explicit
alternative - the direct WAN segment keeps a constant raw capacity, but a
seeded Poisson stream of finite TCP flows (web-transfer sized, heavy-tailed)
shares it with the measured transfer, so available bandwidth emerges from
genuine max-min contention in the fluid engine.

Both worlds of a paired measurement receive *identical* cross-traffic
(same seed, same arrival process), preserving the control-vs-selector
comparison.  Ablation bench A7 uses this to show the paper's conclusions
are robust to how variability is modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.session import SessionConfig
from repro.net.route import Route
from repro.net.topology import wan_link_name
from repro.tcp.cross_traffic import CrossTrafficConfig, CrossTrafficSource
from repro.trace.records import TransferRecord
from repro.util.validation import check_non_negative, check_positive
from repro.workloads.experiment import STUDY_SESSION_CONFIG
from repro.workloads.scenario import Scenario, Universe

__all__ = ["ContentionSpec", "run_contended_pair"]


@dataclass(frozen=True)
class ContentionSpec:
    """Cross-traffic shape applied to a client's direct WAN segment.

    ``load`` is the target mean utilisation of the segment by background
    flows (0.0-0.9); arrival rate is derived from it and ``mean_size`` so
    that ``arrival_rate * mean_size = load * capacity``.
    """

    load: float = 0.5
    mean_size: float = 400_000.0
    sigma: float = 1.3
    warmup: float = 30.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.load <= 0.9:
            raise ValueError(f"load must lie in [0, 0.9], got {self.load}")
        check_positive(self.mean_size, "mean_size")
        check_non_negative(self.warmup, "warmup")

    def traffic_config(self, capacity: float) -> Optional[CrossTrafficConfig]:
        """The arrival process achieving the target load on ``capacity``."""
        if self.load == 0.0:
            return None
        rate = self.load * capacity / self.mean_size
        return CrossTrafficConfig(
            arrival_rate=rate, mean_size=self.mean_size, sigma=self.sigma
        )


def _attach_cross_traffic(
    scenario: Scenario,
    universe: Universe,
    client: str,
    site: str,
    spec: ContentionSpec,
    seed_labels: Sequence,
    horizon: float,
) -> Optional[CrossTrafficSource]:
    link = scenario.topology.link(wan_link_name(site, client))
    capacity = link.trace.value_at(universe.sim.now)
    config = spec.traffic_config(capacity)
    if config is None:
        return None
    # Background flows traverse only the WAN segment: they model other
    # endpoints' traffic crossing the same congested core links, not flows
    # terminating at this client (which would consume its access pipe).
    route = Route([link])
    source = CrossTrafficSource(
        universe.network,
        [route],
        config,
        scenario.bank.generator("cross-traffic", *seed_labels),
        horizon=universe.sim.now + horizon,
    )
    source.start()
    return source


def run_contended_pair(
    scenario: Scenario,
    *,
    client: str,
    site: str,
    repetition: int,
    start_time: float,
    offered: Sequence[str],
    spec: ContentionSpec = ContentionSpec(),
    config: SessionConfig = STUDY_SESSION_CONFIG,
    traffic_horizon: float = 600.0,
) -> TransferRecord:
    """One paired measurement under explicit cross-traffic contention.

    Both universes receive byte-identical background traffic (the arrival
    stream is seeded by (client, site, repetition) only), then run the
    control and the selecting session after ``spec.warmup`` seconds so the
    background flow population reaches steady state.
    """
    labels = (client, site, repetition)

    control = scenario.universe(start_time, config=config)
    _attach_cross_traffic(scenario, control, client, site, spec, labels, traffic_horizon)
    control.sim.run(until=start_time + spec.warmup)
    ctrl_result = control.session.download_direct(client, site, scenario.resource)

    selector = scenario.universe(
        start_time, config=config, noise_labels=("contended", *labels)
    )
    _attach_cross_traffic(scenario, selector, client, site, spec, labels, traffic_horizon)
    selector.sim.run(until=start_time + spec.warmup)
    sel_result = selector.session.download(client, site, scenario.resource, list(offered))

    profile = scenario.profiles[client]
    return TransferRecord(
        study="contended",
        client=client,
        site=site,
        repetition=repetition,
        start_time=start_time,
        set_size=len(offered),
        offered=tuple(offered),
        selected_via=sel_result.selected_via,
        direct_throughput=ctrl_result.transfer_throughput,
        selected_throughput=sel_result.transfer_throughput,
        end_to_end_throughput=sel_result.end_to_end_throughput,
        probe_overhead=sel_result.probe_overhead_seconds,
        file_bytes=sel_result.size,
        direct_class=profile.throughput_class.value,
        direct_variability=profile.variability.value,
    )
