"""PlanetLab node catalogues and destination sites (paper Tables IV & V).

The client and relay listings are transcribed verbatim from the paper's
appendix.  The §4 experiments used 35 intermediate nodes, but the published
Table V lists only 21; Table III names 8 more (Northwestern, Minnesota,
DePaul, Utah, Maryland, Wayne State, UCSB, Georgetown).  The remaining 6
needed to reach 35 are filled with plausible 2005-era PlanetLab university
sites and are marked ``extrapolated=True`` - a documented substitution (see
DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "CatalogEntry",
    "CLIENT_CATALOG",
    "RELAY_CATALOG",
    "EXTRA_RELAY_CATALOG",
    "SECTION4_RELAY_CATALOG",
    "SECTION4_CLIENTS",
    "SITES",
    "DEFAULT_SITE",
]


@dataclass(frozen=True)
class CatalogEntry:
    """One catalogued PlanetLab node."""

    name: str
    hostname: str
    region: str
    extrapolated: bool = False


#: Table IV - the 22 international client nodes.
CLIENT_CATALOG: Tuple[CatalogEntry, ...] = (
    CatalogEntry("Australia 1", "plnode02.cs.mu.oz.au", "oceania"),
    CatalogEntry("Australia 2", "planet-lab-1.csse.monash.edu.au", "oceania"),
    CatalogEntry("Beirut", "planetlab1.aub.edu.lb", "middle_east"),
    CatalogEntry("Berlin", "planetlab1.info.ucl.ac.be", "europe"),
    CatalogEntry("Brazil", "planetlab2.lsd.ufcg.edu.br", "south_america"),
    CatalogEntry("Canada", "planetlab1.enel.ucalgary.ca", "canada"),
    CatalogEntry("Denmark", "planetlab2.diku.dk", "europe"),
    CatalogEntry("Finland", "planetlab2.hiit.fi", "europe"),
    CatalogEntry("France", "planetlab2.eurecom.fr", "europe"),
    CatalogEntry("Greece", "planetlab1.cslab.ece.ntua.gr", "europe"),
    CatalogEntry("Iceland", "planetlab1.ru.is", "europe"),
    CatalogEntry("India", "planetlab1.iiitb.ac.in", "asia"),
    CatalogEntry("Israel", "planetlab2.bgu.ac.il", "middle_east"),
    CatalogEntry("Italy", "planetlab1.polito.it", "europe"),
    CatalogEntry("Korea", "arari.snu.ac.kr", "asia"),
    CatalogEntry("Norway", "planetlab1.ifi.uio.no", "europe"),
    CatalogEntry("Russia", "planet-lab.iki.rssi.ru", "europe"),
    CatalogEntry("Singapore", "soccf-planet-001.comp.nus.edu.sg", "asia"),
    CatalogEntry("Sweden", "planetlab1.sics.se", "europe"),
    CatalogEntry("Switzerland", "planetlab02.ethz.ch", "europe"),
    CatalogEntry("Taiwan", "ent1.cs.nccu.edu.tw", "asia"),
    CatalogEntry("UK", "planetlab1.rn.informatics.scitech.susx.ac.uk", "europe"),
)

#: Table V - the 21 USA intermediate (relay) nodes.
RELAY_CATALOG: Tuple[CatalogEntry, ...] = (
    CatalogEntry("CMU", "planetlab-2.cmcl.cs.cmu.edu", "us"),
    CatalogEntry("Berkeley", "planetlab1.millennium.berkeley.edu", "us"),
    CatalogEntry("Caltech", "planlab1.cs.caltech.edu", "us"),
    CatalogEntry("Columbia", "planetlab1.comet.columbia.edu", "us"),
    CatalogEntry("Duke", "planetlab1.cs.duke.edu", "us"),
    CatalogEntry("Georgia Tech", "planet.cc.gt.atl.ga.us", "us"),
    CatalogEntry("Harvard", "lefthand.eecs.harvard.edu", "us"),
    CatalogEntry("Michigan", "planetlab1.eecs.umich.edu", "us"),
    CatalogEntry("MIT", "planetlab1.csail.mit.edu", "us"),
    CatalogEntry("Notre Dame", "planetlab1.cse.nd.edu", "us"),
    CatalogEntry("NYU", "planet1.scs.cs.nyu.edu", "us"),
    CatalogEntry("Princeton", "planetlab-1.cs.princeton.edu", "us"),
    CatalogEntry("Rice", "ricepl-1.cs.rice.edu", "us"),
    CatalogEntry("Stanford", "planetlab-1.stanford.edu", "us"),
    CatalogEntry("Texas", "planetlab1.csres.utexas.edu", "us"),
    CatalogEntry("UCLA", "planetlab2.cs.ucla.edu", "us"),
    CatalogEntry("UCSD", "planetlab2.ucsd.edu", "us"),
    CatalogEntry("UIUC", "planetlab1.cs.uiuc.edu", "us"),
    CatalogEntry("Upenn", "planetlab1.cis.upenn.edu", "us"),
    CatalogEntry("Washington", "planetlab01.cs.washington.edu", "us"),
    CatalogEntry("Wisconsin", "planetlab1.cs.wisc.edu", "us"),
)

#: Relays named in Table III but absent from Table V, plus seven extrapolated
#: sites needed to reach the §4 experiments' 35 intermediate nodes (Table V
#: lists 21 relays; Duke acts as a client in §4, leaving 20 + 8 + 7 = 35).
EXTRA_RELAY_CATALOG: Tuple[CatalogEntry, ...] = (
    CatalogEntry("Northwestern", "planetlab1.cs.northwestern.edu", "us"),
    CatalogEntry("Minnesota", "planetlab1.dtc.umn.edu", "us"),
    CatalogEntry("DePaul", "planetlab1.cti.depaul.edu", "us"),
    CatalogEntry("Utah", "planetlab1.flux.utah.edu", "us"),
    CatalogEntry("Maryland", "planetlab1.cs.umd.edu", "us"),
    CatalogEntry("Wayne State", "planetlab-01.cs.wayne.edu", "us"),
    CatalogEntry("UCSB", "planetlab1.cs.ucsb.edu", "us"),
    CatalogEntry("Georgetown", "planetlab1.georgetown.edu", "us"),
    CatalogEntry("Purdue", "planetlab1.cs.purdue.edu", "us", extrapolated=True),
    CatalogEntry("Cornell", "planetlab1.cs.cornell.edu", "us", extrapolated=True),
    CatalogEntry("Virginia", "planetlab1.cs.virginia.edu", "us", extrapolated=True),
    CatalogEntry("Arizona", "planetlab1.cs.arizona.edu", "us", extrapolated=True),
    CatalogEntry("Colorado", "planetlab1.cs.colorado.edu", "us", extrapolated=True),
    CatalogEntry("Ohio State", "planetlab1.cse.ohio-state.edu", "us", extrapolated=True),
    CatalogEntry("UMass", "planetlab1.cs.umass.edu", "us", extrapolated=True),
)

#: The §4 experiments' 35 intermediate nodes: Table V minus Duke (which acts
#: as a client there) plus the Table III / extrapolated sites.
SECTION4_RELAY_CATALOG: Tuple[CatalogEntry, ...] = tuple(
    e for e in RELAY_CATALOG if e.name != "Duke"
) + EXTRA_RELAY_CATALOG

#: The §4 client nodes: Duke (a well-connected US site, Low/Medium to eBay),
#: Italy and Sweden.
SECTION4_CLIENTS: Tuple[CatalogEntry, ...] = (
    CatalogEntry("Duke", "planetlab1.cs.duke.edu", "us"),
    CatalogEntry("Italy", "planetlab1.polito.it", "europe"),
    CatalogEntry("Sweden", "planetlab1.sics.se", "europe"),
)

#: The destination web sites (§2.2).  All are US-hosted.
SITES: Tuple[str, ...] = ("eBay", "Google", "Microsoft", "Yahoo")

#: The paper's detailed analyses all use the eBay data set.
DEFAULT_SITE: str = "eBay"


def client_names() -> List[str]:
    """Names of all Table IV clients."""
    return [e.name for e in CLIENT_CATALOG]


def relay_names() -> List[str]:
    """Names of all Table V relays."""
    return [e.name for e in RELAY_CATALOG]
