"""Calibration: mapping the paper's qualitative setting to simulator numbers.

The PlanetLab testbed is gone; what we calibrate instead is a generative
model whose *emergent* statistics land in the paper's reported ranges:

* direct-path average throughputs spanning the Low/Medium/High buckets, with
  international clients mostly Low (paper §2.2);
* direct paths Markov-modulated (abrupt load regimes, cf. He et al. [11]),
  with High-throughput clients having the largest dynamic range - the
  source of the paper's penalty concentration (Table I);
* overlay hops (client <-> US relay) heterogeneous across relays but stable
  in time (paper Fig. 4), with a handful of relays clearly better than the
  rest (Tables II/III);
* relay-to-server segments over-provisioned so the client-relay hop is the
  indirect bottleneck (paper §3.2).

Every constant lives in :class:`CalibrationParams` so ablations can move it.
Rates are stored in Mbps here (human-auditable) and converted when the
scenario builder materialises capacity processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.net.capacity import (
    CapacityProcess,
    ConstantCapacity,
    LognormalAR1Capacity,
    MarkovModulatedCapacity,
)
from repro.util.rng import SeedBank
from repro.util.units import mbps_to_bytes_per_s
from repro.workloads.profiles import ClientProfile, ThroughputClass, Variability

__all__ = ["CalibrationParams", "SiteProfile", "DEFAULT_SITE_PROFILES", "Calibrator"]


@dataclass(frozen=True)
class SiteProfile:
    """Per-destination-site parameters (the four web sites differ mildly)."""

    name: str
    #: Multiplier on every client's direct base toward this site.
    direct_quality: float = 1.0
    #: Server access capacity in Mbps.
    access_mbps: float = 200.0


DEFAULT_SITE_PROFILES: Dict[str, SiteProfile] = {
    "eBay": SiteProfile("eBay", direct_quality=1.00),
    "Google": SiteProfile("Google", direct_quality=1.20),
    "Microsoft": SiteProfile("Microsoft", direct_quality=0.90),
    "Yahoo": SiteProfile("Yahoo", direct_quality=1.05),
}


@dataclass(frozen=True)
class CalibrationParams:
    """All generative constants of the scenario model.

    The defaults were tuned so the §2 study reproduces the paper's headline
    statistics (see EXPERIMENTS.md for paper-vs-measured numbers).
    """

    # -- client class assignment ------------------------------------------
    #: P(Low), P(Medium), P(High) for international clients.
    class_probs: Tuple[float, float, float] = (0.55, 0.30, 0.15)
    #: P(high variability) given each class (Low, Medium, High).
    high_var_probs: Tuple[float, float, float] = (0.25, 0.40, 0.90)

    # -- direct path ------------------------------------------------------
    #: Direct WAN base capacity ranges per class, Mbps (uniform draw).
    low_base_mbps: Tuple[float, float] = (0.5, 1.4)
    medium_base_mbps: Tuple[float, float] = (1.6, 2.8)
    high_base_mbps: Tuple[float, float] = (3.5, 8.0)
    #: Markov modulation for low-variability direct paths.
    low_var_multipliers: Tuple[float, ...] = (1.0, 0.70, 1.25)
    low_var_stationary: Tuple[float, ...] = (0.70, 0.15, 0.15)
    low_var_holding: Tuple[float, ...] = (300.0, 90.0, 90.0)
    #: Markov modulation for high-variability direct paths.
    high_var_multipliers: Tuple[float, ...] = (1.0, 0.28, 2.60)
    high_var_stationary: Tuple[float, ...] = (0.52, 0.24, 0.24)
    high_var_holding: Tuple[float, ...] = (60.0, 22.0, 35.0)
    #: Extra modulation depth for High-throughput clients: fat pipes see the
    #: widest swings in available bandwidth (their dips are relatively
    #: deeper and their recoveries higher), which is what produces the
    #: paper's extreme penalty tail (Table I: avg 290%, max 3840%).
    high_class_dip_factor: float = 0.45
    high_class_surge_factor: float = 1.5
    #: High-throughput clients' congestion episodes are brief relative to
    #: their transfer times (a fat pipe drains its file in seconds): a dip
    #: often ends right after the probe, which is the paper's recipe for a
    #: severe penalty - the indirect path is chosen against a transiently
    #: poor direct path that recovers for the bulk of the transfer.
    high_class_holding_factor: float = 0.35

    # -- access pipes -----------------------------------------------------
    #: Client access capacity = direct_base * uniform(range).
    client_access_factor: Tuple[float, float] = (3.2, 5.0)
    #: Relay access capacity, Mbps (well-provisioned university uplinks).
    relay_access_mbps: float = 20.0

    # -- overlay hops (client <-> relay) -----------------------------------
    #: Median of overlay base relative to the client's direct base, per
    #: throughput class (Low, Medium, High).  Relays help thin-pipe clients
    #: most: overlay-hop quality is a property of client connectivity to the
    #: well-connected US core, which grows sub-linearly with direct-path
    #: capacity - exactly why the paper finds High clients gain little and
    #: suffer the penalties.
    overlay_scale_medians: Tuple[float, float, float] = (1.22, 1.05, 0.78)
    #: Lognormal sigma of the per-client overlay scale.
    overlay_scale_sigma: float = 0.12
    #: Lognormal sigma of per-relay quality (heterogeneity across relays).
    relay_quality_sigma: float = 0.18
    #: Upper cap on the relay quality multiplier.  The paper finds "a
    #: handful of intermediate nodes may be able to yield a majority of the
    #: improvement" (§3.2): the best relays are comparably good, which is
    #: what makes a random set of ~10 of 35 sufficient (Fig. 6).  Capping
    #: the lognormal creates that plateau of near-equivalent top relays.
    relay_quality_cap: float = 1.25
    #: Lognormal sigma of per-(client, relay) pairing noise.
    pair_noise_sigma: float = 0.10
    #: AR(1) wobble on overlay hops (kept small: paper Fig. 4 stability).
    overlay_ar1_sigma: float = 0.08
    overlay_ar1_phi: float = 0.95
    overlay_ar1_step: float = 120.0

    # -- relay -> server segments ------------------------------------------
    #: Uniform range of relay-server WAN capacity, Mbps (over-provisioned).
    relay_server_mbps: Tuple[float, float] = (10.0, 30.0)

    def base_range_for(self, cls: ThroughputClass) -> Tuple[float, float]:
        """Direct-base Mbps range for a throughput class."""
        return {
            ThroughputClass.LOW: self.low_base_mbps,
            ThroughputClass.MEDIUM: self.medium_base_mbps,
            ThroughputClass.HIGH: self.high_base_mbps,
        }[cls]


class Calibrator:
    """Draws concrete profiles and capacity processes from the parameters.

    All draws are keyed through a :class:`~repro.util.rng.SeedBank`, so a
    scenario is fully determined by (root seed, params, catalogues).
    """

    def __init__(self, params: CalibrationParams, bank: SeedBank):
        self.params = params
        self.bank = bank

    # ------------------------------------------------------------------ #
    # per-entity draws
    # ------------------------------------------------------------------ #
    def client_profile(
        self,
        name: str,
        *,
        forced_class: ThroughputClass | None = None,
    ) -> ClientProfile:
        """Draw one client's generative profile (class, bases, access)."""
        rng = self.bank.generator("client-profile", name)
        p = self.params
        if forced_class is None:
            idx = int(rng.choice(3, p=np.asarray(p.class_probs)))
            cls = (ThroughputClass.LOW, ThroughputClass.MEDIUM, ThroughputClass.HIGH)[idx]
        else:
            cls = forced_class
        var_p = p.high_var_probs[cls.order]
        variability = Variability.HIGH if rng.random() < var_p else Variability.LOW
        lo, hi = p.base_range_for(cls)
        base_mbps = float(rng.uniform(lo, hi))
        access_mbps = base_mbps * float(rng.uniform(*p.client_access_factor))
        overlay_scale = float(
            p.overlay_scale_medians[cls.order]
            * rng.lognormal(0.0, p.overlay_scale_sigma)
        )
        return ClientProfile(
            name=name,
            throughput_class=cls,
            variability=variability,
            direct_base=mbps_to_bytes_per_s(base_mbps),
            access_capacity=mbps_to_bytes_per_s(access_mbps),
            overlay_scale=overlay_scale,
        )

    def relay_quality(self, relay: str) -> float:
        """Per-relay connectivity quality factor (capped lognormal)."""
        rng = self.bank.generator("relay-quality", relay)
        q = float(rng.lognormal(0.0, self.params.relay_quality_sigma))
        return min(q, self.params.relay_quality_cap)

    # ------------------------------------------------------------------ #
    # capacity processes
    # ------------------------------------------------------------------ #
    def direct_wan_process(
        self, profile: ClientProfile, site: SiteProfile
    ) -> CapacityProcess:
        """The Markov-modulated direct WAN segment server -> client."""
        p = self.params
        if profile.variability is Variability.HIGH:
            mults, pi, hold = (
                p.high_var_multipliers,
                p.high_var_stationary,
                p.high_var_holding,
            )
            if profile.throughput_class is ThroughputClass.HIGH:
                mults = tuple(
                    m * (p.high_class_dip_factor if m < 1.0 else 1.0)
                    * (p.high_class_surge_factor if m > 1.0 else 1.0)
                    for m in mults
                )
                hold = tuple(h * p.high_class_holding_factor for h in hold)
        else:
            mults, pi, hold = (
                p.low_var_multipliers,
                p.low_var_stationary,
                p.low_var_holding,
            )
        return MarkovModulatedCapacity(
            base=profile.direct_base * site.direct_quality,
            multipliers=mults,
            stationary=pi,
            mean_holding=hold,
        )

    def overlay_wan_process(
        self, profile: ClientProfile, relay: str, relay_q: float
    ) -> CapacityProcess:
        """The stable overlay segment relay -> client."""
        p = self.params
        rng = self.bank.generator("overlay-pair", profile.name, relay)
        pair_noise = float(rng.lognormal(0.0, p.pair_noise_sigma))
        base = profile.direct_base * profile.overlay_scale * relay_q * pair_noise
        return LognormalAR1Capacity(
            base=base,
            sigma=p.overlay_ar1_sigma,
            phi=p.overlay_ar1_phi,
            step=p.overlay_ar1_step,
        )

    def relay_server_process(self, relay: str, site: SiteProfile) -> CapacityProcess:
        """The over-provisioned server -> relay segment."""
        rng = self.bank.generator("relay-server", relay, site.name)
        mbps = float(rng.uniform(*self.params.relay_server_mbps))
        return ConstantCapacity(mbps_to_bytes_per_s(mbps))

    def client_access_process(self, profile: ClientProfile) -> CapacityProcess:
        """The client's access pipe (constant; shared by all its paths)."""
        return ConstantCapacity(profile.access_capacity)

    def relay_access_process(self, relay: str) -> CapacityProcess:
        """A relay's access pipe."""
        return ConstantCapacity(mbps_to_bytes_per_s(self.params.relay_access_mbps))

    def server_access_process(self, site: SiteProfile) -> CapacityProcess:
        """A site's server access pipe."""
        return ConstantCapacity(mbps_to_bytes_per_s(site.access_mbps))
