"""Scale study: a whole population racing probes against one popular site.

The paper measures indirect routing with a handful of PlanetLab clients.
This study asks the scaling question the fluid model makes answerable: what
does the select-one mechanism look like when *hundreds of thousands* of
clients race probes against the same popular site at once?  One wave is one
simulation holding the entire population concurrently on a shared topology:

* one **site access link** every transfer crosses (the popular site);
* a small set of **relay access links** (the overlay deployment);
* per-tier WAN links (generously provisioned aggregate pipes), so a
  client's standalone rate is window-limited by its tier's RTT - the
  classic ``W_max / RTT`` model - while the site access link is the shared
  constraint that actually saturates under population-scale concurrency.

Every client draws (from stable, wave-local seed-bank labels) an RTT tier
for its direct path, an independent tier for its relay path, a relay, a
transfer size class and a start slot, then races a direct probe against a
relay probe, aborts the loser, and fetches the object over the winning
path - the paper's mechanism, driven straight against the fluid engine
with no per-client session machinery.  Draws are quantised into discrete
tiers/classes on purpose: clients with identical coordinates complete at
identical instants, so the vector engine retires whole cohorts per epoch
instead of paying one epoch per client.

Each wave emits one :class:`~repro.trace.records.ScaleRecord` carrying the
population's exact latency/throughput percentiles (computed from per-client
results with numpy, so records are byte-identical for any worker count).
When observability is on, per-client latency and throughput also stream
into obs histograms (``scale.client_latency`` / ``scale.client_throughput``)
and the wave timeline appears as spans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.session import SessionConfig
from repro.net.link import Link
from repro.net.route import Route
from repro.net.trace import CapacityTrace
from repro.sim.simulator import Simulator
from repro.tcp.flow import FluidFlow
from repro.tcp.fluid import FluidNetwork
from repro.tcp.model import SlowStartRamp
from repro.trace.records import ScaleRecord
from repro.util.units import mb, mbps_to_bytes_per_s
from repro.workloads.experiment import STUDY_SESSION_CONFIG
from repro.workloads.scenario import Scenario

__all__ = [
    "SCALE_SESSION_CONFIG",
    "ScaleStudyParams",
    "plan_scale",
    "run_scale_unit",
]

SCALE_SESSION_CONFIG = STUDY_SESSION_CONFIG


@dataclass(frozen=True)
class ScaleStudyParams:
    """Plan-level parameters of the scale study (``CampaignPlan.extra``).

    Hashed into the campaign fingerprint: waves of different population
    size, topology or engine can never share a checkpoint.

    Attributes
    ----------
    clients_per_wave:
        Concurrent clients in one wave (= one simulation).
    probe_bytes:
        Size of each race probe.
    size_classes:
        Transfer sizes (bytes) clients draw uniformly.
    tier_rtts:
        Direct-path round-trip times (seconds) clients draw uniformly; the
        relay path draws its own independent tier.
    relay_rtt_factor:
        Relay paths pay this multiplicative RTT overhead (the overlay hop).
    site_capacity:
        Shared site access-link capacity (bytes/second) - the constraint
        the whole population contends for.
    relay_capacity:
        Per-relay access-link capacity (bytes/second).
    wan_capacity:
        Per-tier aggregate WAN pipe capacity (bytes/second); provisioned
        so tiers stay window-limited rather than WAN-limited.
    n_relays:
        Deployed relays.
    start_slots / slot_spacing:
        Clients start in one of ``start_slots`` batches spaced
        ``slot_spacing`` seconds apart (quantised arrivals keep cohorts
        aligned).
    max_window:
        TCP maximum window (bytes); a tier's standalone rate is
        ``max_window / rtt``.
    engine:
        ``"vector"`` (the struct-of-arrays population engine) or
        ``"classic"`` (the per-object oracle).  Small populations produce
        byte-identical records under both; the classic engine is quadratic
        in population and only sensible for cross-checks.
    """

    clients_per_wave: int = 100_000
    probe_bytes: float = 64_000.0
    size_classes: Tuple[float, ...] = (mb(0.25), mb(1.0), mb(4.0))
    tier_rtts: Tuple[float, ...] = (0.024, 0.072, 0.2)
    relay_rtt_factor: float = 1.25
    site_capacity: float = mbps_to_bytes_per_s(40_000.0)
    relay_capacity: float = mbps_to_bytes_per_s(10_000.0)
    wan_capacity: float = mbps_to_bytes_per_s(100_000.0)
    n_relays: int = 4
    start_slots: int = 2
    slot_spacing: float = 0.5
    max_window: float = 65_536.0
    engine: str = "vector"

    def __post_init__(self) -> None:
        if self.clients_per_wave < 1:
            raise ValueError("clients_per_wave must be >= 1")
        if self.probe_bytes <= 0.0:
            raise ValueError("probe_bytes must be positive")
        if not self.size_classes or any(s <= 0.0 for s in self.size_classes):
            raise ValueError("size_classes must be positive")
        if not self.tier_rtts or any(r <= 0.0 for r in self.tier_rtts):
            raise ValueError("tier_rtts must be positive")
        if self.relay_rtt_factor < 1.0:
            raise ValueError("relay_rtt_factor must be >= 1.0")
        if self.n_relays < 1:
            raise ValueError("n_relays must be >= 1")
        if self.start_slots < 1 or self.slot_spacing < 0.0:
            raise ValueError("start_slots must be >= 1, slot_spacing >= 0")
        if self.engine not in ("vector", "classic"):
            raise ValueError(f"engine must be 'vector' or 'classic', got {self.engine!r}")


def relay_names(params: ScaleStudyParams) -> Tuple[str, ...]:
    """The wave topology's relay labels (also the record's offered set)."""
    return tuple(f"relay{i}" for i in range(params.n_relays))


def plan_scale(
    scenario: Scenario,
    *,
    waves: int,
    interval: float = 600.0,
    config: SessionConfig = SCALE_SESSION_CONFIG,
    params: ScaleStudyParams = ScaleStudyParams(),
    site: str = "eBay",
    study: str = "scale",
):
    """Decompose the scale study into one work unit per wave.

    Waves are independent simulations (each holds its whole population
    concurrently), so they parallelise over ``--jobs`` and checkpoint like
    any other campaign.  All randomness is derived inside the unit from
    wave-local seed-bank labels, so records are byte-identical for any
    worker count or dispatch order.
    """
    from repro.runner.plan import CampaignPlan, WorkUnit

    if waves < 1:
        raise ValueError(f"waves must be >= 1, got {waves}")
    units = [
        WorkUnit(
            index=w,
            study=study,
            client=f"wave{w:03d}",
            site=site,
            repetition=w,
            start_time=w * interval,
            offered=relay_names(params),
            runner="scale",
        )
        for w in range(waves)
    ]
    return CampaignPlan(
        study=study,
        scenario_spec=scenario.spec,
        seed=scenario.bank.root_seed,
        config=config,
        units=tuple(units),
        extra=params,
    )


# --------------------------------------------------------------------------- #
# wave execution
# --------------------------------------------------------------------------- #
class _Client:
    """One client's probe-race state machine (driven by flow callbacks)."""

    __slots__ = (
        "wave", "idx", "size", "direct_route", "relay_route",
        "probe_direct", "probe_relay", "t0",
    )

    def __init__(self, wave: "_Wave", idx: int, size: float,
                 direct_route: Route, relay_route: Route):
        self.wave = wave
        self.idx = idx
        self.size = size
        self.direct_route = direct_route
        self.relay_route = relay_route
        self.probe_direct: Optional[FluidFlow] = None
        self.probe_relay: Optional[FluidFlow] = None
        self.t0 = 0.0

    def start(self) -> None:
        wave = self.wave
        self.t0 = wave.net.sim.now
        self.probe_direct = wave.start_flow(self.direct_route, wave.probe_bytes,
                                            self.probe_done)
        self.probe_relay = wave.start_flow(self.relay_route, wave.probe_bytes,
                                           self.probe_done)

    def probe_done(self, flow: FluidFlow) -> None:
        wave = self.wave
        if flow is self.probe_direct:
            loser, route, indirect = self.probe_relay, self.direct_route, False
        else:
            loser, route, indirect = self.probe_direct, self.relay_route, True
        self.probe_direct = self.probe_relay = None
        if loser is not None:
            wave.net.abort_flow(loser)
        now = wave.net.sim.now
        wave.probe_overhead_sum += now - self.t0
        if indirect:
            wave.indirect[self.idx] = True
        wave.start_flow(route, self.size, self.transfer_done)

    def transfer_done(self, flow: FluidFlow) -> None:
        wave = self.wave
        now = flow.completed_at
        assert now is not None
        wave.latency[self.idx] = now - self.t0
        wave.throughput[self.idx] = self.size / (now - self.t0)
        wave.n_completed += 1


class _Wave:
    """Shared per-wave context: the network, counters and result arrays."""

    def __init__(self, net: FluidNetwork, n: int, probe_bytes: float,
                 max_window: float):
        self.net = net
        self.probe_bytes = probe_bytes
        self.latency = np.full(n, np.nan)
        self.throughput = np.full(n, np.nan)
        self.indirect = np.zeros(n, dtype=bool)
        self.n_completed = 0
        self.probe_overhead_sum = 0.0
        self._max_window = max_window
        #: SlowStartRamp cache keyed by RTT (shared across the population).
        self._ramps = {}

    def ramp(self, rtt: float) -> SlowStartRamp:
        ramp = self._ramps.get(rtt)
        if ramp is None:
            ramp = SlowStartRamp(rtt=rtt, max_window=self._max_window)
            self._ramps[rtt] = ramp
        return ramp

    def start_flow(self, route: Route, size: float, done) -> FluidFlow:
        return self.net.start_flow(
            route, size, ramp=self.ramp(route.rtt), on_complete=done,
        )


def _build_routes(
    params: ScaleStudyParams, site: str
) -> Tuple[List[Route], List[List[Route]]]:
    """The wave's shared topology: direct and relay routes per RTT tier.

    Returns ``(direct[tier], relay[tier][relay_index])``.  All clients in a
    tier share the same :class:`Route` objects - links are the shared
    constraints, routes are just their paths.
    """
    site_link = Link(
        name=f"scale:site:{site}", src=site, dst=site,
        trace=CapacityTrace.constant(params.site_capacity), delay=0.001,
    )
    relay_links = [
        Link(
            name=f"scale:relay:{name}", src=name, dst=name,
            trace=CapacityTrace.constant(params.relay_capacity), delay=0.0,
        )
        for name in relay_names(params)
    ]
    direct: List[Route] = []
    relay: List[List[Route]] = []
    for t, rtt in enumerate(params.tier_rtts):
        # Link delays are one-way; Route.rtt doubles their sum.  The site
        # hop contributes 2 x 1ms, the WAN link carries the rest.
        wan_d = Link(
            name=f"scale:wan:d{t}", src=f"tier{t}", dst=site,
            trace=CapacityTrace.constant(params.wan_capacity),
            delay=rtt / 2.0 - site_link.delay,
        )
        direct.append(Route([wan_d, site_link]))
        relay_rtt = rtt * params.relay_rtt_factor
        wan_r = Link(
            name=f"scale:wan:r{t}", src=f"tier{t}", dst="overlay",
            trace=CapacityTrace.constant(params.wan_capacity),
            delay=relay_rtt / 2.0 - site_link.delay,
        )
        relay.append(
            [Route([wan_r, rl, site_link], via=rl.src) for rl in relay_links]
        )
    return direct, relay


def run_scale_unit(
    scenario: Scenario,
    config: SessionConfig,
    unit,
    params: Optional[ScaleStudyParams],
) -> ScaleRecord:
    """Simulate one wave and aggregate it into a :class:`ScaleRecord`.

    The wave builds its own population-scale topology (the scenario
    contributes the seed bank and the site name); the paper's PlanetLab
    scenario stays what the plan fingerprints against.
    """
    if params is None:
        params = ScaleStudyParams()
    n = params.clients_per_wave
    rng = scenario.bank.generator("scale-wave", unit.study, unit.repetition)
    n_tiers = len(params.tier_rtts)
    tier_d = rng.integers(0, n_tiers, size=n)
    tier_r = rng.integers(0, n_tiers, size=n)
    relay_of = rng.integers(0, params.n_relays, size=n)
    size_of = rng.integers(0, len(params.size_classes), size=n)
    slot_of = rng.integers(0, params.start_slots, size=n)

    sim = Simulator()
    net = FluidNetwork(
        sim,
        vector=(params.engine == "vector"),
        coalesce_activations=True,
    )
    obs = sim.observer
    direct_routes, relay_routes = _build_routes(params, unit.site)

    wave = _Wave(net, n, params.probe_bytes, params.max_window)
    clients = [
        _Client(
            wave, i, params.size_classes[size_of[i]],
            direct_routes[tier_d[i]],
            relay_routes[tier_r[i]][relay_of[i]],
        )
        for i in range(n)
    ]
    by_slot: List[List[_Client]] = [[] for _ in range(params.start_slots)]
    for i, client in enumerate(clients):
        by_slot[slot_of[i]].append(client)

    def launch(batch: List[_Client]):
        def _go() -> None:
            for client in batch:
                client.start()
        return _go

    for s, batch in enumerate(by_slot):
        if batch:
            sim.schedule_at(s * params.slot_spacing, launch(batch),
                            name=f"scale-slot{s}")

    sim.run()
    if wave.n_completed != n:
        raise RuntimeError(
            f"scale wave {unit.repetition}: {wave.n_completed}/{n} clients "
            "completed after the event queue drained"
        )
    makespan = sim.now - 0.0

    lat, thr = wave.latency, wave.throughput
    if obs is not None:
        obs.count("scale.clients", float(n))
        obs.gauge("scale.wave_makespan", makespan)
        for v in lat:
            obs.observe_value("scale.client_latency", float(v))
        for v in thr:
            obs.observe_value("scale.client_throughput", float(v))

    indirect = int(np.count_nonzero(wave.indirect))
    direct_won = n - indirect
    total_bytes = float(np.sum(np.asarray(params.size_classes)[size_of]))
    mean_ind = float(thr[wave.indirect].mean()) if indirect else 0.0
    mean_dir = float(thr[~wave.indirect].mean()) if direct_won else 0.0

    def q(a: np.ndarray, p: float) -> float:
        return float(np.quantile(a, p))

    return ScaleRecord(
        study=unit.study,
        client=unit.client,
        site=unit.site,
        repetition=unit.repetition,
        start_time=unit.start_time,
        set_size=params.n_relays,
        offered=tuple(relay_names(params)),
        selected_via=None,
        direct_throughput=mean_dir,
        selected_throughput=mean_ind,
        end_to_end_throughput=total_bytes / makespan if makespan > 0 else 0.0,
        probe_overhead=wave.probe_overhead_sum / n,
        file_bytes=total_bytes,
        n_clients=n,
        n_completed=wave.n_completed,
        mean_throughput=float(thr.mean()),
        n_indirect=indirect,
        n_direct=direct_won,
        makespan=makespan,
        throughput_p10=q(thr, 0.10),
        throughput_p50=q(thr, 0.50),
        throughput_p90=q(thr, 0.90),
        throughput_p99=q(thr, 0.99),
        latency_p50=q(lat, 0.50),
        latency_p90=q(lat, 0.90),
        latency_p99=q(lat, 0.99),
        latency_max=float(lat.max()),
    )
