"""Counterfactual measurements: what would the road not taken have carried?

The paper can only observe the path its client selected; penalties are
diagnosed after the fact.  The simulator can do better: because capacity
traces are immutable and universes are cheap, we can run *three* worlds for
one transfer at the same start time:

1. the control client (direct path, full file);
2. the forced-indirect client (given relay, full file, no probe);
3. the selecting client (probe + remainder, the paper's mechanism).

This yields ground truth for the probe's decision quality: whether the
selected path was actually the faster one for the bulk transfer, and the
regret (throughput forgone) when it was not.  The prediction-quality
analysis (:mod:`repro.analysis.prediction`) and ablation bench A5 are built
on these records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.session import SessionConfig
from repro.workloads.experiment import STUDY_SESSION_CONFIG
from repro.workloads.scenario import Scenario

__all__ = ["CounterfactualRecord", "run_counterfactual_transfer"]


@dataclass(frozen=True)
class CounterfactualRecord:
    """One transfer with its untaken alternative measured.

    All throughputs are bulk-phase bytes/second.  ``relay`` is the single
    candidate relay that was offered (this runner studies the paper's §2
    two-path decision, where ground truth is well-defined).
    """

    client: str
    site: str
    relay: str
    repetition: int
    start_time: float
    direct_throughput: float
    indirect_throughput: float
    selected_via: Optional[str]
    selected_throughput: float
    probe_overhead: float

    @property
    def best_via(self) -> Optional[str]:
        """The truly faster path for the full transfer (None = direct)."""
        return self.relay if self.indirect_throughput > self.direct_throughput else None

    @property
    def best_throughput(self) -> float:
        """Throughput of the truly faster path."""
        return max(self.direct_throughput, self.indirect_throughput)

    @property
    def decision_correct(self) -> bool:
        """Did the probe select the path that was actually faster?"""
        return self.selected_via == self.best_via

    @property
    def regret(self) -> float:
        """Fraction of the best path's throughput forgone by the decision.

        0 for correct decisions (up to simulation noise); positive when the
        probe picked the slower path.
        """
        if self.best_throughput <= 0.0:
            return 0.0
        return max(
            0.0, (self.best_throughput - self.selected_throughput) / self.best_throughput
        )

    @property
    def achievable_improvement(self) -> float:
        """Improvement an oracle would have realised: (best - direct)/direct."""
        return (self.best_throughput - self.direct_throughput) / self.direct_throughput


def run_counterfactual_transfer(
    scenario: Scenario,
    *,
    client: str,
    site: str,
    relay: str,
    repetition: int = 0,
    start_time: float = 0.0,
    config: SessionConfig = STUDY_SESSION_CONFIG,
) -> CounterfactualRecord:
    """Run the three-world measurement for one (client, relay) transfer."""
    resource = scenario.resource

    control = scenario.universe(start_time, config=config)
    direct_result = control.session.download_direct(client, site, resource)

    forced = scenario.universe(start_time, config=config)
    # A full download via the relay, probe-free: issue through the builder.
    path = scenario.builder.indirect(client, relay, site)
    forced_result = forced.session._full_download(path, client, site, resource)

    selector = scenario.universe(
        start_time,
        config=config,
        noise_labels=("counterfactual", client, site, repetition),
    )
    selected = selector.session.download(client, site, resource, [relay])

    return CounterfactualRecord(
        client=client,
        site=site,
        relay=relay,
        repetition=repetition,
        start_time=start_time,
        direct_throughput=direct_result.transfer_throughput,
        indirect_throughput=forced_result.transfer_throughput,
        selected_via=selected.selected_via,
        selected_throughput=selected.transfer_throughput,
        probe_overhead=selected.probe_overhead_seconds,
    )


def run_counterfactual_study(
    scenario: Scenario,
    *,
    clients: Optional[Sequence[str]] = None,
    site: str = "eBay",
    repetitions: int = 20,
    interval: float = 360.0,
    config: SessionConfig = STUDY_SESSION_CONFIG,
) -> list:
    """Counterfactual records for a §2-style schedule (rotating relays)."""
    clients = list(clients) if clients is not None else scenario.client_names
    records = []
    for client in clients:
        rotation = list(scenario.relay_names)
        rng = scenario.bank.generator("cf-rotation", client)
        rng.shuffle(rotation)
        for j in range(repetitions):
            records.append(
                run_counterfactual_transfer(
                    scenario,
                    client=client,
                    site=site,
                    relay=rotation[j % len(rotation)],
                    repetition=j,
                    start_time=j * interval,
                    config=config,
                )
            )
    return records


__all__.append("run_counterfactual_study")
