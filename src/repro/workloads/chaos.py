"""Chaos resilience study: mechanisms x fault families x intensities.

PR 4 asked "does failover mask a clean relay crash?"; this study asks the
harder question the overlay literature actually poses: how do the three
mechanisms we now have - the paper's probe-race **select**, the PR 4
resilient **failover** protocol, and PR 7's **stripe**-k - degrade under a
realistic fault taxonomy?  Every unit runs one mechanism arm against the
direct control on the same fault-injected scenario and emits one
:class:`~repro.trace.records.ChaosRecord`.

The grid: each repetition slot runs every (family, intensity) cell from
:mod:`repro.chaos.faults` (gray, flap, correlated, partition at mild and
severe, plus the ``none`` baseline), and each cell runs all three
mechanism arms over the *identical* fault environment - fault timing is
drawn from seed-bank labels that exclude the mechanism, so the comparison
is paired by construction and the whole study is byte-identical for any
worker count, engine mode or observability state.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chaos.faults import (
    FAULT_FAMILIES,
    FAULT_INTENSITIES,
    FaultWindow,
    blackout_spans,
    compile_fault_plan,
    degraded_seconds,
    plan_spans,
)
from repro.core.resilience import RecoveryEvent, ResilienceConfig, recovery_time_of
from repro.core.session import SessionConfig
from repro.net.topology import wan_link_name
from repro.obs.core import global_observer
from repro.stripe.blocks import DEFAULT_BLOCK_BYTES, StripeConfig
from repro.trace.records import ChaosRecord
from repro.workloads.experiment import STUDY_SESSION_CONFIG
from repro.workloads.scenario import Scenario, Universe

__all__ = [
    "CHAOS_MECHANISMS",
    "CHAOS_RESILIENCE",
    "CHAOS_SESSION_CONFIG",
    "ChaosStudyParams",
    "chaos_cells",
    "chaos_fault_plan",
    "parse_chaos_variant",
    "plan_chaos",
    "run_chaos_unit",
]

#: The three rival mechanisms compared on every fault cell.
CHAOS_MECHANISMS = ("select", "failover", "stripe")

#: Resilience settings for the failover arm (identical to the mHTTP
#: study's select arm - the PR 4 protocol); the select arm runs the same
#: deadlines with mid-transfer failover switched off.
CHAOS_RESILIENCE = ResilienceConfig(
    probe_deadline=30.0,
    failover=True,
    transfer_deadline=1800.0,
)

CHAOS_SESSION_CONFIG = dataclasses.replace(
    STUDY_SESSION_CONFIG, resilience=CHAOS_RESILIENCE
)


@dataclass(frozen=True)
class ChaosStudyParams:
    """Plan-level parameters of the chaos study (``CampaignPlan.extra``).

    Hashed into the campaign fingerprint, so runs with different stripe
    geometry or fault timing can never share a checkpoint.  Fault onset is
    uniform in ``[onset_delay_min, onset_delay_max]`` seconds after the
    unit starts - like the mHTTP crash model, sharp enough that every
    injected fault actually intersects the session it targets.
    """

    block_bytes: float = DEFAULT_BLOCK_BYTES
    window: int = 2
    max_copies: int = 2
    onset_delay_min: float = 4.0
    onset_delay_max: float = 30.0
    transfer_deadline: float = 1800.0

    def __post_init__(self) -> None:
        if self.onset_delay_min < 0.0 or self.onset_delay_max < self.onset_delay_min:
            raise ValueError(
                "onset delay bounds must satisfy 0 <= min <= max, got "
                f"[{self.onset_delay_min}, {self.onset_delay_max}]"
            )
        if self.transfer_deadline <= 0.0:
            raise ValueError("transfer_deadline must be positive")

    def stripe_config(self) -> StripeConfig:
        """The striped-session configuration all stripe arms run with."""
        return StripeConfig(
            block_bytes=self.block_bytes,
            window=self.window,
            max_copies=self.max_copies,
            transfer_deadline=self.transfer_deadline,
        )


def chaos_cells(
    families: Sequence[str] = FAULT_FAMILIES,
    intensities: Sequence[str] = FAULT_INTENSITIES,
) -> List[Tuple[str, str]]:
    """The (family, intensity) grid one repetition slot runs.

    ``none`` collapses to a single baseline cell (its intensity column is
    meaningless, pinned to the first requested intensity); every other
    family appears once per intensity, in request order.
    """
    bad = [f for f in families if f not in FAULT_FAMILIES]
    if bad:
        raise ValueError(f"unknown fault families {bad}; expected {FAULT_FAMILIES}")
    bad = [i for i in intensities if i not in FAULT_INTENSITIES]
    if bad:
        raise ValueError(f"unknown intensities {bad}; expected {FAULT_INTENSITIES}")
    if not families or not intensities:
        raise ValueError("need at least one family and one intensity")
    cells: List[Tuple[str, str]] = []
    for family in dict.fromkeys(families):
        if family == "none":
            cells.append(("none", intensities[0]))
        else:
            cells.extend((family, i) for i in dict.fromkeys(intensities))
    return cells


def parse_chaos_variant(variant: str) -> Tuple[str, str, str]:
    """Decode ``"failover+gray:severe"`` -> (mechanism, family, intensity)."""
    mechanism, sep, cell = variant.partition("+")
    if sep and mechanism in CHAOS_MECHANISMS:
        family, sep2, intensity = cell.partition(":")
        if sep2 and family in FAULT_FAMILIES and intensity in FAULT_INTENSITIES:
            return mechanism, family, intensity
    raise ValueError(
        f"malformed chaos variant {variant!r}; expected e.g. 'failover+gray:severe'"
    )


def chaos_fault_plan(
    scenario: Scenario,
    params: ChaosStudyParams,
    *,
    client: str,
    site: str,
    offered: Sequence[str],
    family: str,
    intensity: str,
    repetition: int,
    start_time: float,
) -> Dict[str, List[FaultWindow]]:
    """The per-link fault plan one unit injects, drawn from stable labels.

    The label path carries the full cell coordinate *except the mechanism*
    and the draw order is fixed, so the three mechanism arms of one cell
    see the identical fault environment regardless of worker count or
    execution order.
    """
    if family == "none":
        return {}
    rng = scenario.bank.generator("chaos", family, intensity, client, site, repetition)
    onset = start_time + float(
        rng.uniform(params.onset_delay_min, params.onset_delay_max)
    )
    return compile_fault_plan(
        family,
        intensity,
        direct_link=wan_link_name(site, client),
        overlay_link=wan_link_name(offered[0], client),
        egress_links=[wan_link_name(site, relay) for relay in offered],
        onset=onset,
    )


def plan_chaos(
    scenario: Scenario,
    *,
    repetitions: int,
    interval: float,
    k: int = 3,
    families: Sequence[str] = FAULT_FAMILIES,
    intensities: Sequence[str] = FAULT_INTENSITIES,
    config: SessionConfig = CHAOS_SESSION_CONFIG,
    params: ChaosStudyParams = ChaosStudyParams(),
    site: str = "eBay",
    clients: Optional[Sequence[str]] = None,
    study: str = "chaos",
):
    """Decompose the chaos study into a fingerprinted campaign plan.

    Each client runs ``repetitions`` slots at ``interval`` spacing; every
    slot runs the full (family, intensity) grid, and every cell runs all
    three mechanism arms over the same ``k - 1`` relays, taken adjacently
    from the client's seeded rotation (so the primary relay - the gray /
    partition target - is stable across the slot).  The cell coordinate
    rides in :attr:`~repro.runner.plan.WorkUnit.variant` (e.g.
    ``"stripe+correlated:mild"``) and units dispatch through the
    ``"chaos"`` runner.
    """
    from repro.runner.plan import CampaignPlan, WorkUnit

    if repetitions < 1:
        raise ValueError(f"repetitions must be >= 1, got {repetitions}")
    if k < 2:
        raise ValueError(f"k must be >= 2 (direct plus >= 1 relay), got {k}")
    if k - 1 > len(scenario.relay_names):
        raise ValueError(
            f"k={k} needs {k - 1} relays; scenario deploys "
            f"{len(scenario.relay_names)}"
        )
    cells = chaos_cells(families, intensities)
    client_list = list(clients) if clients is not None else scenario.client_names
    units = []
    for client in client_list:
        rotation = list(scenario.relay_names)
        rng = scenario.bank.generator("chaos-rotation", client)
        rng.shuffle(rotation)
        for j in range(repetitions):
            offered = tuple(
                rotation[(j + i) % len(rotation)] for i in range(k - 1)
            )
            for family, intensity in cells:
                for mechanism in CHAOS_MECHANISMS:
                    units.append(
                        WorkUnit(
                            index=len(units),
                            study=study,
                            client=client,
                            site=site,
                            repetition=j,
                            start_time=j * interval,
                            offered=offered,
                            variant=f"{mechanism}+{family}:{intensity}",
                            runner="chaos",
                        )
                    )
    return CampaignPlan(
        study=study,
        scenario_spec=scenario.spec,
        seed=scenario.bank.root_seed,
        config=config,
        units=tuple(units),
        extra=params,
    )


def _stripe_recovery_time(events: Sequence[RecoveryEvent]) -> float:
    """Stripe analogue of :func:`recovery_time_of`: seconds from the first
    dead path to the re-dispatch (reissue) that answered it; NaN when no
    path died or nothing was reissued afterwards."""
    for i, event in enumerate(events):
        if event.kind == "path_dead":
            for later in events[i + 1 :]:
                if later.kind == "reissue":
                    return later.time - event.time
            return math.nan
    return math.nan


def _watch_blackouts(
    universe: Universe, plan: Dict[str, List[FaultWindow]]
) -> None:
    """Register the plan's blackout windows with the universe's sanitizer.

    Arms the QA-R006 invariant: during a registered blackout the engine
    must neither budget capacity on, nor deliver bytes across, the dark
    link.  A no-op when sanitizing is off (the common case).
    """
    sanitizer = universe.sim.sanitizer
    if sanitizer is not None and plan:
        sanitizer.watch_fault_windows(blackout_spans(plan))


def run_chaos_unit(
    scenario: Scenario,
    config: SessionConfig,
    unit,
    params: Optional[ChaosStudyParams],
) -> ChaosRecord:
    """Execute one chaos-study unit on a freshly fault-injected scenario.

    The direct control re-runs on the *same* faulted scenario, then the
    unit's mechanism arm runs over its offered relays.  The select arm is
    the failover arm with mid-transfer recovery switched off - identical
    deadlines, identical probe race - so any separation between the two
    columns is attributable to the recovery protocol alone.
    """
    if params is None:
        params = ChaosStudyParams()
    mechanism, family, intensity = parse_chaos_variant(unit.variant)
    plan = chaos_fault_plan(
        scenario,
        params,
        client=unit.client,
        site=unit.site,
        offered=unit.offered,
        family=family,
        intensity=intensity,
        repetition=unit.repetition,
        start_time=unit.start_time,
    )
    faulted = scenario.with_faults(plan) if plan else scenario
    spans = plan_spans(plan)

    obs = global_observer()
    if obs is not None:
        obs.count("chaos.units")
        obs.count(f"chaos.family.{family}")
        for link, windows in sorted(plan.items()):
            for w in windows:
                obs.span(
                    "fault",
                    link,
                    w.start,
                    w.end,
                    family=family,
                    intensity=intensity,
                    factor=w.factor,
                )

    control = faulted.universe(unit.start_time, config=config)
    _watch_blackouts(control, plan)
    ctrl = control.session.download_direct(unit.client, unit.site, faulted.resource)

    if mechanism in ("select", "failover"):
        arm_config = config
        if mechanism == "select":
            arm_config = dataclasses.replace(
                config,
                resilience=dataclasses.replace(config.resilience, failover=False),
            )
        selector = faulted.universe(
            unit.start_time,
            config=arm_config,
            noise_labels=(unit.study, unit.client, unit.site, unit.repetition),
        )
        _watch_blackouts(selector, plan)
        sel = selector.session.download(
            unit.client, unit.site, faulted.resource, list(unit.offered)
        )
        events = sel.recovery_events
        interval = (sel.requested_at, sel.completed_at)
        mech_fields = dict(
            selected_via=sel.selected_via,
            selected_throughput=sel.transfer_throughput,
            end_to_end_throughput=sel.end_to_end_throughput,
            probe_overhead=sel.probe_overhead_seconds,
            outcome=sel.outcome.value,
            n_failovers=sum(1 for e in events if e.kind == "failover"),
            n_path_failures=0,
            bytes_received=sel.delivered,
            selected_duration=sel.duration,
            time_to_recover=recovery_time_of(events),
        )
    else:
        striper = faulted.universe(unit.start_time, config=config)
        _watch_blackouts(striper, plan)
        res = striper.session.download_striped(
            unit.client,
            unit.site,
            faulted.resource,
            list(unit.offered),
            stripe=params.stripe_config(),
        )
        events = res.recovery_events
        interval = (res.requested_at, res.completed_at)
        mech_fields = dict(
            selected_via=None,
            # A stripe has no probe/bulk split: its one throughput is the
            # whole-session goodput, recorded in both columns.
            selected_throughput=res.end_to_end_throughput,
            end_to_end_throughput=res.end_to_end_throughput,
            probe_overhead=0.0,
            outcome=res.outcome.value,
            n_failovers=0,
            n_path_failures=len(res.failed_paths),
            bytes_received=res.delivered,
            selected_duration=res.duration,
            time_to_recover=_stripe_recovery_time(events),
        )

    downtime = degraded_seconds(spans, interval[0], interval[1])
    return ChaosRecord(
        study=unit.study,
        client=unit.client,
        site=unit.site,
        repetition=unit.repetition,
        start_time=unit.start_time,
        set_size=len(unit.offered),
        offered=unit.offered,
        direct_throughput=ctrl.end_to_end_throughput,
        file_bytes=ctrl.size,
        mechanism=mechanism,
        fault_family=family,
        intensity=intensity,
        stripe_k=len(unit.offered) + 1,
        direct_outcome=ctrl.outcome.value,
        direct_duration=ctrl.duration,
        fault_downtime=downtime,
        fault_overlap=downtime > 0.0,
        recovery_events=events,
        **mech_fields,
    )
