"""Client throughput classes and variability profiles.

The paper buckets client nodes by measured average direct-path throughput -
Low (0-1.5 Mbps), Medium (1.5-3.0 Mbps), High (> 3.0 Mbps) - and further by
how *variable* that throughput is.  Both dimensions drive its penalty
analysis (Table I): penalties concentrate on High-throughput and
high-variability clients.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.units import mbps_to_bytes_per_s

__all__ = ["ThroughputClass", "Variability", "ClientProfile"]


class ThroughputClass(enum.Enum):
    """The paper's direct-path throughput categories."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"

    @classmethod
    def classify(cls, throughput_bytes_per_s: float) -> "ThroughputClass":
        """Bucket an average direct-path throughput (bytes/second)."""
        if throughput_bytes_per_s < 0.0:
            raise ValueError(f"throughput must be >= 0, got {throughput_bytes_per_s}")
        if throughput_bytes_per_s < mbps_to_bytes_per_s(1.5):
            return cls.LOW
        if throughput_bytes_per_s < mbps_to_bytes_per_s(3.0):
            return cls.MEDIUM
        return cls.HIGH

    @property
    def order(self) -> int:
        """Sortable rank: LOW < MEDIUM < HIGH."""
        return {"low": 0, "medium": 1, "high": 2}[self.value]


class Variability(enum.Enum):
    """Coarse direct-path throughput variability level."""

    LOW = "low"
    HIGH = "high"


@dataclass(frozen=True)
class ClientProfile:
    """The generative ground truth assigned to one client at scenario build.

    Attributes
    ----------
    name:
        Client node name.
    throughput_class:
        Intended direct-path class (the *measured* class can drift slightly
        because throughput emerges from the simulation).
    variability:
        Direct-path variability level; high variability means large
        Markov-modulation swings.
    direct_base:
        Base direct WAN capacity in bytes/second (before modulation).
    access_capacity:
        The client's access-pipe capacity in bytes/second (shared by direct
        and indirect paths).
    overlay_scale:
        Multiplier relating this client's overlay-hop quality to its direct
        base (captures how much headroom indirect paths have).
    """

    name: str
    throughput_class: ThroughputClass
    variability: Variability
    direct_base: float
    access_capacity: float
    overlay_scale: float

    def __post_init__(self) -> None:
        if self.direct_base <= 0.0:
            raise ValueError("direct_base must be positive")
        if self.access_capacity <= 0.0:
            raise ValueError("access_capacity must be positive")
        if self.overlay_scale <= 0.0:
            raise ValueError("overlay_scale must be positive")
