"""Study drivers: the paper's two measurement campaigns, simulated.

Each *repetition* is a paired measurement, exactly as deployed on PlanetLab
(§2.2): a control client downloads the whole file over the direct path while
the selecting client probes its candidate paths and downloads over the
winner.  The pair runs in two independent universes opened at the same
simulation time on the same capacity traces, so both observe identical
network conditions without interfering.

:class:`Section2Study`
    22 international clients x 4 web sites, one candidate relay per transfer
    (rotating through the deployed relays, seeded per client), a transfer
    every 6 minutes for 10 hours.  Feeds Figs. 1-5 and Tables I-II.
:class:`Section4Study`
    Duke/Italy/Sweden against eBay, a transfer every 30 seconds for 6 hours,
    candidate sets drawn by a selection policy (uniform random k-subsets for
    the paper's Fig. 6/Table III; any policy for the ablations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.policy import SelectionPolicy
from repro.core.probe import ProbeMode
from repro.core.session import SessionConfig
from repro.http.transfer import TcpParams
from repro.trace.records import TransferRecord
from repro.trace.store import TraceStore
from repro.util.units import MINUTE
from repro.workloads.scenario import Scenario

__all__ = [
    "Section2Study",
    "Section4Study",
    "run_paired_transfer",
    "run_interfering_pair",
    "STUDY_SESSION_CONFIG",
    "SECTION4_SESSION_CONFIG",
]

#: Session parameters used by the studies: PlanetLab-era hosts ran with
#: enlarged TCP buffers, so a 128 KB maximum window (not the protocol-default
#: 64 KB) is the faithful setting for 2005 wide-area transfers.
STUDY_SESSION_CONFIG = SessionConfig(tcp=TcpParams(max_window=131_072.0))

#: §4 sessions probe candidates *sequentially*: the paper describes the
#: multi-relay selection as "perform n preliminary download tests and see
#: which produces the best throughput".  Racing dozens of probes
#: concurrently would let them congest the client's own access link and
#: bias selection toward the lowest-latency path (the ablation bench A3
#: demonstrates exactly that failure mode).
SECTION4_SESSION_CONFIG = SessionConfig(
    probe_mode=ProbeMode.SEQUENTIAL,
    tcp=TcpParams(max_window=131_072.0),
    probe_noise_sigma=0.10,
)


def run_paired_transfer(
    scenario: Scenario,
    *,
    study: str,
    client: str,
    site: str,
    repetition: int,
    start_time: float,
    offered: Sequence[str],
    config: SessionConfig = STUDY_SESSION_CONFIG,
) -> TransferRecord:
    """Run one control + selector pair and return its record.

    This is the atomic measurement used by every study and example: open two
    universes at ``start_time``, run the direct control in one and the
    selecting session (probing ``offered`` relays) in the other.
    """
    control = scenario.universe(start_time, config=config)
    ctrl_result = control.session.download_direct(client, site, scenario.resource)

    selector = scenario.universe(
        start_time, config=config, noise_labels=(study, client, site, repetition)
    )
    sel_result = selector.session.download(client, site, scenario.resource, list(offered))

    profile = scenario.profiles[client]
    return TransferRecord(
        study=study,
        client=client,
        site=site,
        repetition=repetition,
        start_time=start_time,
        set_size=len(offered),
        offered=tuple(offered),
        selected_via=sel_result.selected_via,
        direct_throughput=ctrl_result.transfer_throughput,
        selected_throughput=sel_result.transfer_throughput,
        end_to_end_throughput=sel_result.end_to_end_throughput,
        probe_overhead=sel_result.probe_overhead_seconds,
        file_bytes=sel_result.size,
        direct_class=profile.throughput_class.value,
        direct_variability=profile.variability.value,
    )


def run_interfering_pair(
    scenario: Scenario,
    *,
    study: str,
    client: str,
    site: str,
    repetition: int,
    start_time: float,
    offered: Sequence[str],
    config: SessionConfig = STUDY_SESSION_CONFIG,
) -> TransferRecord:
    """One paired measurement the way PlanetLab actually ran it.

    The paper's two client processes executed *concurrently on the same
    node* (§2.2), so the control download and the selector's probes/bulk
    share the client's access link and interfere.  This runner reproduces
    that: both live in one universe; the control's full GET is issued
    first (non-blocking), then the selecting session runs, then the
    control is driven to completion.

    Compare against :func:`run_paired_transfer` (isolated universes) to
    quantify the measurement bias the paper's methodology accepts -
    ablation bench A11.
    """
    from repro.http.messages import HttpRequest
    from repro.http.transfer import issue_download

    universe = scenario.universe(
        start_time, config=config, noise_labels=(study, client, site, repetition)
    )
    direct_path = scenario.builder.direct(client, site)
    control_transfer = issue_download(
        universe.network,
        direct_path.route,
        direct_path.server,
        HttpRequest(host=site, path=scenario.resource),
        tcp=config.tcp,
        name="control-direct",
    )

    sel_result = universe.session.download(client, site, scenario.resource, list(offered))
    universe.network.run_to_completion(control_transfer.flow)

    profile = scenario.profiles[client]
    return TransferRecord(
        study=study,
        client=client,
        site=site,
        repetition=repetition,
        start_time=start_time,
        set_size=len(offered),
        offered=tuple(offered),
        selected_via=sel_result.selected_via,
        direct_throughput=control_transfer.throughput(),
        selected_throughput=sel_result.transfer_throughput,
        end_to_end_throughput=sel_result.end_to_end_throughput,
        probe_overhead=sel_result.probe_overhead_seconds,
        file_bytes=sel_result.size,
        direct_class=profile.throughput_class.value,
        direct_variability=profile.variability.value,
    )


@dataclass
class Section2Study:
    """The §2-3 campaign: one rotating candidate relay per transfer.

    Parameters
    ----------
    scenario:
        A :meth:`~repro.workloads.scenario.ScenarioSpec.section2` scenario.
    repetitions:
        Transfers per (client, site); the paper ran 100 (every 6 min, 10 h).
    interval:
        Seconds between consecutive transfers of one client.
    config:
        Client mechanism parameters (probe size, mode, TCP).
    """

    scenario: Scenario
    repetitions: int = 100
    interval: float = 6.0 * MINUTE
    config: SessionConfig = STUDY_SESSION_CONFIG

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.interval <= 0.0:
            raise ValueError("interval must be positive")
        needed = self.repetitions * self.interval
        if needed > self.scenario.spec.horizon:
            raise ValueError(
                f"schedule needs {needed:.0f}s but scenario horizon is "
                f"{self.scenario.spec.horizon:.0f}s"
            )

    def relay_rotation(self, client: str) -> List[str]:
        """The seeded per-client order in which relays take the indirect path."""
        from repro.runner.plan import section2_relay_rotation

        return section2_relay_rotation(self.scenario, client)

    def plan(
        self,
        *,
        sites: Optional[Sequence[str]] = None,
        clients: Optional[Sequence[str]] = None,
    ):
        """Decompose the campaign into a deterministic work-unit plan."""
        from repro.runner.plan import plan_section2

        return plan_section2(
            self.scenario,
            repetitions=self.repetitions,
            interval=self.interval,
            config=self.config,
            sites=sites,
            clients=clients,
        )

    def run(
        self,
        *,
        sites: Optional[Sequence[str]] = None,
        clients: Optional[Sequence[str]] = None,
        jobs: int = 1,
        checkpoint=None,
        resume: bool = False,
        checkpoint_every: Optional[int] = None,
        progress: bool = False,
        unit_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> TraceStore:
        """Run the campaign and return all paired records.

        Every execution goes through the campaign runner
        (:mod:`repro.runner`): ``jobs=1`` is the serial path, larger values
        fan the independent paired measurements out across processes with
        byte-identical output.  ``checkpoint``/``resume`` enable incremental
        shard persistence (see :mod:`repro.runner.checkpoint`).
        """
        from repro import runner

        result = runner.execute_plan(
            self.plan(sites=sites, clients=clients),
            scenario=self.scenario,
            jobs=jobs,
            checkpoint=checkpoint,
            resume=resume,
            checkpoint_every=(
                checkpoint_every
                if checkpoint_every is not None
                else runner.DEFAULT_CHECKPOINT_EVERY
            ),
            progress=progress,
            unit_timeout=unit_timeout,
            max_retries=(
                max_retries if max_retries is not None else runner.DEFAULT_MAX_RETRIES
            ),
        )
        assert result.store is not None  # full plan: merge cannot be partial
        return result.store


@dataclass
class Section4Study:
    """The §4 campaign: policy-driven candidate sets, rapid transfers.

    Parameters
    ----------
    scenario:
        A :meth:`~repro.workloads.scenario.ScenarioSpec.section4` scenario.
    repetitions:
        Transfers per (client, configuration); the paper ran 720 (every
        30 s for 6 h).
    interval:
        Seconds between consecutive transfers of one client.
    config:
        Client mechanism parameters.
    """

    scenario: Scenario
    repetitions: int = 720
    interval: float = 30.0
    config: SessionConfig = SECTION4_SESSION_CONFIG

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        if self.interval <= 0.0:
            raise ValueError("interval must be positive")
        needed = self.repetitions * self.interval
        if needed > self.scenario.spec.horizon:
            raise ValueError(
                f"schedule needs {needed:.0f}s but scenario horizon is "
                f"{self.scenario.spec.horizon:.0f}s"
            )

    def run_policy(
        self,
        policy: SelectionPolicy,
        *,
        study: str = "section4",
        site: str = "eBay",
        clients: Optional[Sequence[str]] = None,
        set_size_label: Optional[int] = None,
        jobs: int = 1,
    ) -> TraceStore:
        """Run one policy for every client; returns all paired records.

        ``set_size_label`` overrides the recorded ``set_size`` (useful when a
        policy's nominal k differs from the offered count); by default the
        actual offered-set size is recorded.

        Stateless policies (those that never override
        :meth:`~repro.core.policy.SelectionPolicy.observe`) are decomposed
        into a work-unit plan and may run on ``jobs`` processes; adaptive
        policies form a sequential chain and only support ``jobs=1``.
        """
        from repro.runner.plan import plan_section4_policy, policy_is_stateless

        if policy_is_stateless(policy):
            from repro.runner.pool import execute_plan

            plan = plan_section4_policy(
                self.scenario,
                policy,
                repetitions=self.repetitions,
                interval=self.interval,
                config=self.config,
                study=study,
                site=site,
                clients=clients,
                set_size_label=set_size_label,
            )
            result = execute_plan(plan, scenario=self.scenario, jobs=jobs)
            assert result.store is not None
            return result.store
        if jobs != 1:
            raise ValueError(
                f"policy {policy.name!r} adapts to feedback; its campaign is "
                "sequential and cannot run with jobs > 1"
            )
        clients = list(clients) if clients is not None else self.scenario.client_names
        full_set = self.scenario.relay_names
        store = TraceStore()
        for client in clients:
            rng = self.scenario.bank.generator("policy", study, policy.name, client)
            for j in range(self.repetitions):
                start = j * self.interval
                offered = policy.candidates(client, site, full_set, rng, now=start)
                record = run_paired_transfer(
                    self.scenario,
                    study=study,
                    client=client,
                    site=site,
                    repetition=j,
                    start_time=start,
                    offered=offered,
                    config=self.config,
                )
                if set_size_label is not None:
                    record = TransferRecord(
                        **{**record.to_dict(), "set_size": set_size_label,
                           "offered": tuple(record.offered)}
                    )
                policy.observe(
                    client,
                    site,
                    offered,
                    record.selected_via,
                    throughput=record.selected_throughput,
                )
                store.append(record)
        return store

    def plan_random_set_sweep(
        self,
        k_values: Iterable[int],
        *,
        site: str = "eBay",
        clients: Optional[Sequence[str]] = None,
    ):
        """Decompose the Fig. 6 sweep into a deterministic work-unit plan."""
        from repro.runner.plan import plan_section4_sweep

        return plan_section4_sweep(
            self.scenario,
            k_values,
            repetitions=self.repetitions,
            interval=self.interval,
            config=self.config,
            site=site,
            clients=clients,
        )

    def run_random_set_sweep(
        self,
        k_values: Iterable[int],
        *,
        site: str = "eBay",
        clients: Optional[Sequence[str]] = None,
        jobs: int = 1,
        checkpoint=None,
        resume: bool = False,
        checkpoint_every: Optional[int] = None,
        progress: bool = False,
        unit_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
    ) -> TraceStore:
        """The paper's Fig. 6 sweep: uniform random sets of each size k.

        Runs through the campaign runner; see :meth:`Section2Study.run` for
        the execution keywords.  The candidate sets are pre-drawn by the
        planner with the serial draw order, so output is byte-identical for
        every ``jobs`` value.
        """
        from repro import runner

        result = runner.execute_plan(
            self.plan_random_set_sweep(k_values, site=site, clients=clients),
            scenario=self.scenario,
            jobs=jobs,
            checkpoint=checkpoint,
            resume=resume,
            checkpoint_every=(
                checkpoint_every
                if checkpoint_every is not None
                else runner.DEFAULT_CHECKPOINT_EVERY
            ),
            progress=progress,
            unit_timeout=unit_timeout,
            max_retries=(
                max_retries if max_retries is not None else runner.DEFAULT_MAX_RETRIES
            ),
        )
        assert result.store is not None
        return result.store
