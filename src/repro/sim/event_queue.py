"""A cancellable, deterministically ordered event queue.

Events are ordered by ``(time, sequence_number)``: ties in time are broken by
insertion order, which makes simulations fully deterministic regardless of
callback contents.  Cancellation is O(1) via tombstoning (the standard heapq
idiom); stale entries are skipped lazily on pop.
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.errors import SchedulingError

__all__ = ["Event", "EventQueue"]


class Event:
    """A scheduled callback.  Do not construct directly; use ``EventQueue.push``.

    A plain ``__slots__`` class rather than a dataclass: the simulator
    allocates one per scheduled callback, so construction cost and per-event
    memory are on the kernel's hot path.
    """

    __slots__ = ("time", "seq", "callback", "name", "cancelled", "popped")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        name: str = "",
        cancelled: bool = False,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = cancelled
        self.popped = False

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when reached."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True if the event has not been cancelled."""
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        label = self.name or self.callback.__name__
        return f"Event(t={self.time:.6f}, seq={self.seq}, {label}, {state})"


class EventQueue:
    """Binary-heap priority queue of :class:`Event` with stable ordering."""

    __slots__ = ("_heap", "_counter", "_len_active", "_cancelled_total", "_high_water")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = 0
        self._len_active = 0
        self._cancelled_total = 0
        self._high_water = 0

    def push(self, time: float, callback: Callable[[], Any], *, name: str = "") -> Event:
        """Schedule ``callback`` at ``time`` and return its (cancellable) event."""
        if not callable(callback):
            raise SchedulingError(f"callback must be callable, got {callback!r}")
        time = float(time)
        if math.isnan(time):
            raise SchedulingError("event time must not be NaN")
        seq = self._counter
        self._counter = seq + 1
        event = Event(time, seq, callback, name)
        heapq.heappush(self._heap, (time, seq, event))
        self._len_active += 1
        if self._len_active > self._high_water:
            self._high_water = self._len_active
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously pushed event (idempotent).

        Cancelling an event that already popped marks it cancelled but does
        not touch the active count: it left the queue when it was popped
        (decrementing again would drive ``len()`` negative).
        """
        if not event.cancelled:
            event.cancel()
            if not event.popped:
                self._len_active -= 1
                self._cancelled_total += 1

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest active event, or ``None`` if empty."""
        while self._heap:
            _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event.popped = True
            self._len_active -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest active event, or ``None`` if empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    @property
    def pushed(self) -> int:
        """Total events ever scheduled (the next event's sequence number)."""
        return self._counter

    @property
    def cancelled_total(self) -> int:
        """Total events cancelled over the queue's lifetime."""
        return self._cancelled_total

    @property
    def high_water(self) -> int:
        """Largest number of simultaneously pending events seen so far."""
        return self._high_water

    def __len__(self) -> int:
        """Number of active (non-cancelled) events."""
        return self._len_active

    def __bool__(self) -> bool:
        return self._len_active > 0

    def clear(self) -> None:
        """Drop all events (including pending cancellations)."""
        self._heap.clear()
        self._len_active = 0
        self._high_water = 0
