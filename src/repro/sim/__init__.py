"""Discrete-event simulation kernel: event queue, clock, run loop."""

from repro.sim.errors import (
    SchedulingError,
    SimulationDeadlock,
    SimulationError,
    TransferError,
)
from repro.sim.event_queue import Event, EventQueue
from repro.sim.simulator import Simulator

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "SimulationError",
    "SchedulingError",
    "SimulationDeadlock",
    "TransferError",
]
