"""Exception hierarchy for the simulation kernel and its users."""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "SchedulingError",
    "SimulationDeadlock",
    "TransferError",
]


class SimulationError(Exception):
    """Base class for all simulator-raised errors."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or with invalid arguments."""


class SimulationDeadlock(SimulationError):
    """`run()` was asked to reach a condition but the event queue drained."""


class TransferError(SimulationError):
    """A transfer could not make progress (e.g. zero-capacity route forever)."""
