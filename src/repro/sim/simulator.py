"""The simulation clock and run loop.

``Simulator`` is a conventional discrete-event kernel: callbacks are scheduled
at absolute or relative times and executed in ``(time, insertion)`` order.
Agents (HTTP clients, proxies, the fluid transport engine) hold a reference to
the simulator and schedule their own continuations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.errors import SchedulingError, SimulationDeadlock
from repro.sim.event_queue import Event, EventQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.core import Observer
    from repro.qa.sanitize import Sanitizer

__all__ = ["Simulator"]


class Simulator:
    """Discrete-event simulation kernel.

    Set ``sanitize=True`` (or export ``REPRO_SANITIZE=1``) to install the
    :mod:`repro.qa` runtime invariant sanitizer on this kernel and every
    engine bound to it; checks are read-only, so sanitized runs produce
    byte-identical results.

    Set ``observe=True`` (or export ``REPRO_OBS=1``) to bind the
    process-global :class:`repro.obs.core.Observer` to this kernel and
    every engine bound to it.  Observation is likewise read-only and keyed
    to sim time, so observed runs also produce byte-identical results; the
    sanitizer and observer are independent hooks and compose freely.

    Examples
    --------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule_at(1.0, lambda: seen.append(sim.now))
    >>> _ = sim.schedule_after(0.5, lambda: seen.append(sim.now))
    >>> sim.run()
    1.0
    >>> seen
    [0.5, 1.0]
    """

    __slots__ = (
        "_queue",
        "_now",
        "_processed",
        "max_events",
        "_sanitizer",
        "_observer",
    )

    def __init__(
        self,
        *,
        start_time: float = 0.0,
        max_events: int = 50_000_000,
        sanitize: Optional[bool] = None,
        sanitizer: Optional["Sanitizer"] = None,
        observe: Optional[bool] = None,
        observer: Optional["Observer"] = None,
    ):
        self._queue = EventQueue()
        self._now = float(start_time)
        self._processed = 0
        #: Safety valve against runaway event loops (raises if exceeded).
        self.max_events = int(max_events)
        if sanitizer is None:
            # Lazy imports: repro.qa is only pulled in when sanitizing, so
            # the hot construction path stays import-light and the qa
            # package may import the sim package freely.
            if sanitize is None:
                from repro.qa.sanitize import sanitize_enabled_from_env

                sanitize = sanitize_enabled_from_env()
            if sanitize:
                from repro.qa.sanitize import Sanitizer

                sanitizer = Sanitizer()
        self._sanitizer = sanitizer
        if observer is None:
            # Same lazy-import pattern as the sanitizer above.  Simulators
            # share the process-global observer so one campaign yields one
            # trace; pass ``observer=`` explicitly to isolate a kernel.
            if observe is None:
                from repro.obs.core import observe_enabled_from_env

                observe = observe_enabled_from_env()
            if observe:
                from repro.obs.core import global_observer

                observer = global_observer(create=True)
        self._observer = observer

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def sanitizer(self) -> Optional["Sanitizer"]:
        """The installed runtime invariant checker, or ``None``."""
        return self._sanitizer

    @property
    def observer(self) -> Optional["Observer"]:
        """The bound :mod:`repro.obs` observer, or ``None`` when disabled."""
        return self._observer

    @property
    def events_processed(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-run, not-cancelled events."""
        return len(self._queue)

    def schedule_at(self, time: float, callback: Callable[[], Any], *, name: str = "") -> Event:
        """Schedule ``callback`` at absolute time ``time`` (>= now)."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        return self._queue.push(time, callback, name=name)

    def schedule_after(self, delay: float, callback: Callable[[], Any], *, name: str = "") -> Event:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0.0:
            raise SchedulingError(f"delay must be non-negative, got {delay}")
        return self._queue.push(self._now + delay, callback, name=name)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (idempotent)."""
        self._queue.cancel(event)

    def _step(self) -> bool:
        event = self._queue.pop()
        if event is None:
            return False
        if self._sanitizer is not None:
            self._sanitizer.check_event_time(self._now, event.time, event.name)
        obs = self._observer
        if obs is not None:
            obs.count("sim.events")
            if event.name:
                # Group e.g. "probe:direct" under "sim.event.probe".
                obs.count("sim.event." + event.name.partition(":")[0])
            queue = self._queue
            obs.gauge("sim.queue_depth", float(len(queue)))
            obs.gauge_max("sim.queue_high_water", float(queue.high_water))
            obs.gauge("sim.events_scheduled", float(queue.pushed))
            obs.gauge("sim.events_cancelled", float(queue.cancelled_total))
        # Clock only moves forward; equal-time events run in insertion order.
        self._now = event.time
        self._processed += 1
        if self._processed > self.max_events:
            raise SimulationDeadlock(
                f"exceeded max_events={self.max_events}; "
                "likely a runaway rescheduling loop"
            )
        event.callback()
        return True

    def run(self, *, until: Optional[float] = None) -> float:
        """Run until the queue drains, or just past ``until`` if given.

        With ``until`` set, events strictly after ``until`` remain pending and
        the clock is advanced exactly to ``until``.  Returns the final clock.
        """
        if until is None:
            while self._step():
                pass
            return self._now
        if until < self._now:
            raise SchedulingError(f"until={until} is before current time {self._now}")
        while True:
            t = self._queue.peek_time()
            if t is None or t > until:
                self._now = float(until)
                return self._now
            self._step()

    def run_until_true(
        self,
        predicate: Callable[[], bool],
        *,
        limit: Optional[float] = None,
    ) -> float:
        """Run until ``predicate()`` holds after some event.

        Raises :class:`SimulationDeadlock` if the queue drains (or ``limit``
        is passed) before the predicate is satisfied.
        """
        if predicate():
            return self._now
        queue = self._queue
        step = self._step
        while True:
            t = queue.peek_time()
            if t is None or (limit is not None and t > limit):
                raise SimulationDeadlock(
                    "event queue drained (or time limit reached) before the "
                    "requested condition became true"
                )
            step()
            if predicate():
                return self._now

    def reset(self, *, start_time: float = 0.0) -> None:
        """Drop all pending events and rewind the clock (for reuse in tests)."""
        self._queue.clear()
        self._now = float(start_time)
        self._processed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self._now:.6f}, pending={self.pending_events}, "
            f"processed={self._processed})"
        )
