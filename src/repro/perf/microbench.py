"""Minimal best-of-N timing harness for kernel microbenchmarks.

Methodology (documented in DESIGN.md §"Engine performance"): each bench is a
callable that performs ``ops`` operations per invocation; we run it
``rounds`` times after a warm-up invocation and report the *minimum*
per-operation time.  The minimum — not the mean — estimates the cost of the
code itself: scheduler preemption, allocator hiccups and cache-cold first
runs only ever add time, so the fastest observed round is the least
contaminated sample (the classic ``timeit`` argument).

The workload inside a bench must be deterministic (seeded RNG, fixed sizes)
so successive runs and successive PRs measure the same work; only the
wall-clock varies.  Wall-clock access is confined to this module and the CLI
edge — the simulation core itself is wall-clock-free (QA-D004).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["Measurement", "measure"]

#: Nanoseconds per second (perf_counter_ns -> per-op seconds conversions).
NS_PER_S: float = 1e9


@dataclass(frozen=True)
class Measurement:
    """Best-of-N timing for one benchmark workload."""

    #: Best observed nanoseconds per operation.
    ns_per_op: float
    #: Operations performed per round.
    ops: int
    #: Timed rounds (excluding warm-up).
    rounds: int
    #: Total wall-clock seconds spent measuring (all rounds + warm-up).
    elapsed_s: float

    @property
    def seconds_per_op(self) -> float:
        """Best observed seconds per operation."""
        return self.ns_per_op / NS_PER_S

    @property
    def ops_per_s(self) -> float:
        """Best observed operation throughput."""
        if self.ns_per_op <= 0.0:
            return float("inf")
        return NS_PER_S / self.ns_per_op


def measure(
    fn: Callable[[], Any],
    *,
    ops: int,
    rounds: int = 5,
    warmup: int = 1,
) -> Measurement:
    """Time ``fn`` (which performs ``ops`` operations) best-of-``rounds``.

    Parameters
    ----------
    fn:
        The workload; called once per round with no arguments.  It should
        perform ``ops`` homogeneous operations and be deterministic.
    ops:
        Operations per round, used to normalise to ns/op.  Must be positive.
    rounds:
        Timed invocations; the minimum is reported.
    warmup:
        Untimed invocations before measuring (JIT-less Python still benefits:
        imports resolve, allocators warm, branch caches fill).
    """
    if ops <= 0:
        raise ValueError(f"ops must be positive, got {ops}")
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    t_start = time.perf_counter_ns()
    for _ in range(warmup):
        fn()
    best_ns = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter_ns()
        fn()
        elapsed = time.perf_counter_ns() - t0
        if elapsed < best_ns:
            best_ns = float(elapsed)
    total_ns = float(time.perf_counter_ns() - t_start)
    return Measurement(
        ns_per_op=best_ns / float(ops),
        ops=ops,
        rounds=rounds,
        elapsed_s=total_ns / NS_PER_S,
    )
