"""Deterministic microbenchmarks for the simulation kernel's hot paths.

Each bench measures one kernel (scalar trace queries, max-min allocation,
event-queue churn, the fluid tick) or the end-to-end mini-campaign, and —
where the optimisation can be toggled — runs the same deterministic workload
in both engine modes:

* **optimised** — the incremental engine (alloc-state cache, trace cursors,
  allocator fast paths);
* **baseline** — the seed engine path (``REPRO_ENGINE_BASELINE``:
  rebuild-every-tick, ``searchsorted`` scalar queries, reference allocator).

Workloads are seeded and fixed-size, so successive runs (and successive
PRs) measure identical work.  Results are plain dicts; the ``repro perf``
CLI assembles them into ``BENCH_engine.json`` via :mod:`repro.perf.report`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.link import Link
from repro.net.route import Route
from repro.net.trace import CapacityTrace, TraceCursor
from repro.perf.microbench import Measurement, measure
from repro.sim.event_queue import Event, EventQueue
from repro.sim.simulator import Simulator
from repro.tcp.fluid import FluidNetwork
from repro.tcp.maxmin import maxmin_allocate
from repro.util.rng import derive_seed
from repro.util.units import MB, mbps_to_bytes_per_s

__all__ = ["BenchSpec", "BENCHES", "run_benches"]

#: Root seed for every bench workload (fixed: benches must measure
#: identical work across runs and PRs).
_BENCH_SEED = 1894

_BASELINE_ENV_VAR = "REPRO_ENGINE_BASELINE"


@dataclass(frozen=True)
class BenchSpec:
    """One named benchmark: a deterministic workload plus how to report it."""

    name: str
    summary: str
    unit: str
    runner: Callable[[bool], Dict[str, Any]]

    def run(self, quick: bool) -> Dict[str, Any]:
        """Execute the bench; returns the result dict for the report."""
        result = self.runner(quick)
        result["unit"] = self.unit
        optimised = result.get("optimised")
        baseline = result.get("baseline")
        if (
            isinstance(optimised, float)
            and isinstance(baseline, float)
            and optimised > 0.0
        ):
            result["speedup"] = baseline / optimised
        else:
            result["speedup"] = None
        return result


def _measurement_fields(m: Measurement) -> Dict[str, Any]:
    return {"ops": m.ops, "rounds": m.rounds}


# --------------------------------------------------------------------------- #
# trace scalar queries: cursor vs searchsorted
# --------------------------------------------------------------------------- #
def _bench_trace_scalar(quick: bool) -> Dict[str, Any]:
    pieces = 500 if quick else 2_000
    queries = 5_000 if quick else 50_000
    rounds = 3 if quick else 5
    rng = np.random.default_rng(derive_seed(_BENCH_SEED, "trace-scalar"))
    times = np.concatenate(([0.0], np.cumsum(rng.uniform(0.5, 2.0, size=pieces - 1))))
    values = rng.uniform(1.0, 100.0, size=pieces)
    trace = CapacityTrace(times, values)
    horizon = float(times[-1]) * 1.05
    query_times = np.sort(rng.uniform(0.0, horizon, size=queries)).tolist()

    def run_cursor() -> float:
        cursor = TraceCursor(trace)
        acc = 0.0
        for t in query_times:
            acc += cursor.value_at(t)
            acc += cursor.next_change_after(t)
        return acc

    def run_searchsorted() -> float:
        acc = 0.0
        for t in query_times:
            acc += trace.value_at(t)
            acc += trace.next_change_after(t)
        return acc

    ops = queries * 2
    opt = measure(run_cursor, ops=ops, rounds=rounds)
    base = measure(run_searchsorted, ops=ops, rounds=rounds)
    return {
        "optimised": opt.ns_per_op,
        "baseline": base.ns_per_op,
        **_measurement_fields(opt),
    }


# --------------------------------------------------------------------------- #
# event queue churn
# --------------------------------------------------------------------------- #
def _bench_event_queue(quick: bool) -> Dict[str, Any]:
    n_events = 2_000 if quick else 20_000
    rounds = 3 if quick else 5
    rng = np.random.default_rng(derive_seed(_BENCH_SEED, "event-queue"))
    event_times = rng.uniform(0.0, 1_000.0, size=n_events).tolist()
    cancel_every = 7

    def run() -> int:
        queue = EventQueue()
        push = queue.push
        noop = _noop
        cancels: List[Event] = []
        for i, t in enumerate(event_times):
            event = push(t, noop)
            if i % cancel_every == 0:
                cancels.append(event)
        for event in cancels:
            queue.cancel(event)
        popped = 0
        while queue.pop() is not None:
            popped += 1
        return popped

    # One op = one push + its share of cancels/pops.
    m = measure(run, ops=n_events, rounds=rounds)
    return {"optimised": m.ns_per_op, "baseline": None, **_measurement_fields(m)}


def _noop() -> None:
    return None


# --------------------------------------------------------------------------- #
# max-min allocation: disjoint fast path and shared reference loop
# --------------------------------------------------------------------------- #
def _random_disjoint_problem(
    rng: np.random.Generator, n_flows: int, links_per_flow: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    n_links = n_flows * links_per_flow
    capacities = rng.uniform(1.0, 100.0, size=n_links)
    incidence = np.zeros((n_links, n_flows), dtype=bool)
    for j in range(n_flows):
        incidence[j * links_per_flow : (j + 1) * links_per_flow, j] = True
    caps = rng.uniform(1.0, 120.0, size=n_flows)
    return capacities, incidence, caps


def _random_shared_problem(
    rng: np.random.Generator, n_flows: int, n_links: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    capacities = rng.uniform(1.0, 100.0, size=n_links)
    incidence = np.zeros((n_links, n_flows), dtype=bool)
    for j in range(n_flows):
        picks = rng.choice(n_links, size=max(2, n_links // 3), replace=False)
        incidence[picks, j] = True
    # Guarantee sharing: every flow also crosses link 0.
    incidence[0, :] = True
    caps = rng.uniform(1.0, 120.0, size=n_flows)
    return capacities, incidence, caps


def _bench_alloc(
    problems: Sequence[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    rounds: int,
) -> Dict[str, Any]:
    def run_fast() -> None:
        for c, a, caps in problems:
            maxmin_allocate(c, a, caps, validate=False, fast=True)

    def run_reference() -> None:
        for c, a, caps in problems:
            maxmin_allocate(c, a, caps, validate=False, fast=False)

    ops = len(problems)
    opt = measure(run_fast, ops=ops, rounds=rounds)
    base = measure(run_reference, ops=ops, rounds=rounds)
    return {
        "optimised": opt.ns_per_op,
        "baseline": base.ns_per_op,
        **_measurement_fields(opt),
    }


def _bench_alloc_disjoint(quick: bool) -> Dict[str, Any]:
    n_problems = 100 if quick else 400
    rounds = 3 if quick else 5
    rng = np.random.default_rng(derive_seed(_BENCH_SEED, "alloc-disjoint"))
    problems = [
        _random_disjoint_problem(rng, n_flows=int(rng.integers(2, 12)), links_per_flow=3)
        for _ in range(n_problems)
    ]
    return _bench_alloc(problems, rounds)


def _bench_alloc_shared(quick: bool) -> Dict[str, Any]:
    n_problems = 100 if quick else 400
    rounds = 3 if quick else 5
    rng = np.random.default_rng(derive_seed(_BENCH_SEED, "alloc-shared"))
    problems = [
        _random_shared_problem(
            rng, n_flows=int(rng.integers(2, 12)), n_links=int(rng.integers(4, 16))
        )
        for _ in range(n_problems)
    ]
    return _bench_alloc(problems, rounds)


# --------------------------------------------------------------------------- #
# fluid tick: capacity-breakpoint ticks over a stable flow set
# --------------------------------------------------------------------------- #
def _breakpoint_network(
    n_flows: int, n_pieces: int, incremental: bool
) -> Tuple[Simulator, FluidNetwork, float]:
    """Disjoint long-lived flows over breakpoint-heavy traces.

    Every trace breakpoint wakes the engine while the flow set stays
    unchanged — exactly the tick shape the alloc-state cache targets.
    """
    rng = np.random.default_rng(derive_seed(_BENCH_SEED, "tick-breakpoint"))
    sim = Simulator(sanitize=False)
    network = FluidNetwork(sim, incremental=incremental)
    piece_s = 0.25
    horizon = n_pieces * piece_s
    times = np.arange(n_pieces) * piece_s
    for i in range(n_flows):
        values = mbps_to_bytes_per_s(1.0) * rng.uniform(0.5, 1.5, size=n_pieces)
        trace = CapacityTrace(times, values)
        link = Link(f"access:{i}", f"src{i}", f"dst{i}", trace, delay=0.01)
        route = Route([link])
        # Big enough to stay active through every breakpoint.
        network.start_flow(route, 100.0 * MB, name=f"bulk{i}", activation_delay=0.0)
    return sim, network, horizon


def _bench_tick_breakpoint(quick: bool) -> Dict[str, Any]:
    n_flows = 4 if quick else 8
    n_pieces = 200 if quick else 1_000
    rounds = 3 if quick else 5

    def run_mode(incremental: bool) -> Measurement:
        ticks = 0

        def run() -> None:
            nonlocal ticks
            sim, _net, horizon = _breakpoint_network(n_flows, n_pieces, incremental)
            sim.run(until=horizon)
            ticks = sim.events_processed

        first = measure(run, ops=1, rounds=1, warmup=1)
        if ticks <= 0:  # pragma: no cover - defensive
            raise RuntimeError("tick bench produced no events")
        m = measure(run, ops=ticks, rounds=rounds, warmup=0)
        return Measurement(
            ns_per_op=m.ns_per_op,
            ops=m.ops,
            rounds=m.rounds,
            elapsed_s=m.elapsed_s + first.elapsed_s,
        )

    opt = run_mode(True)
    base = run_mode(False)
    return {
        "optimised": opt.ns_per_op,
        "baseline": base.ns_per_op,
        **_measurement_fields(opt),
    }


# --------------------------------------------------------------------------- #
# vector engine: per-epoch cost over a contended population
# --------------------------------------------------------------------------- #
def _vec_epoch_population(n_flows: int, vector: bool) -> Simulator:
    """A shared-bottleneck population in slow start (scale-study shape).

    Every flow crosses one site access link plus its RTT tier's WAN pipe,
    with quantised sizes and start slots - the cohort-retirement shape the
    vector engine's batched epochs target.  Returns the simulator, ready to
    run; the whole population activates within the first second.
    """
    from repro.tcp.model import SlowStartRamp

    rng = np.random.default_rng(derive_seed(_BENCH_SEED, "vec-epoch"))
    sim = Simulator(sanitize=False)
    network = FluidNetwork(sim, vector=vector, coalesce_activations=True)
    site = Link(
        "site", "net", "site",
        CapacityTrace.constant(mbps_to_bytes_per_s(2_000.0)), delay=0.001,
    )
    tier_rtts = (0.024, 0.072, 0.2)
    wans = [
        Link(
            f"wan{t}", "edge", "net",
            CapacityTrace.constant(mbps_to_bytes_per_s(10_000.0)),
            delay=rtt / 2.0 - site.delay,
        )
        for t, rtt in enumerate(tier_rtts)
    ]
    ramps = {
        t: SlowStartRamp(rtt=2.0 * (wans[t].delay + site.delay))
        for t in range(len(tier_rtts))
    }
    sizes = (0.25 * MB, 1.0 * MB, 4.0 * MB)
    tier_of = rng.integers(0, len(tier_rtts), size=n_flows)
    size_of = rng.integers(0, len(sizes), size=n_flows)
    slot_of = rng.integers(0, 4, size=n_flows)
    for i in range(n_flows):
        t = int(tier_of[i])
        network.start_flow(
            Route([wans[t], site]),
            sizes[int(size_of[i])],
            ramp=ramps[t],
            activation_delay=0.25 * int(slot_of[i]),
        )
    return sim


def _bench_vec_epoch(quick: bool) -> Dict[str, Any]:
    n_flows = 200 if quick else 800
    rounds = 3 if quick else 5

    def run_mode(vector: bool) -> Measurement:
        epochs = 0

        def run() -> None:
            nonlocal epochs
            sim = _vec_epoch_population(n_flows, vector)
            sim.run()
            epochs = sim.events_processed

        first = measure(run, ops=1, rounds=1, warmup=1)
        if epochs <= 0:  # pragma: no cover - defensive
            raise RuntimeError("vec_epoch bench produced no events")
        m = measure(run, ops=epochs, rounds=rounds, warmup=0)
        return Measurement(
            ns_per_op=m.ns_per_op,
            ops=m.ops,
            rounds=m.rounds,
            elapsed_s=m.elapsed_s + first.elapsed_s,
        )

    opt = run_mode(True)
    base = run_mode(False)
    return {
        "optimised": opt.ns_per_op,
        "baseline": base.ns_per_op,
        "flows": n_flows,
        **_measurement_fields(opt),
    }


# --------------------------------------------------------------------------- #
# population-scale campaign: one full `repro scale` wave
# --------------------------------------------------------------------------- #
def _bench_scale_campaign(quick: bool) -> Dict[str, Any]:
    # Lazy imports for the same reason as the mini-campaign bench.
    from repro.workloads.scale import (
        SCALE_SESSION_CONFIG,
        ScaleStudyParams,
        plan_scale,
        run_scale_unit,
    )
    from repro.workloads.scenario import Scenario, ScenarioSpec

    n_clients = 5_000 if quick else 100_000
    rounds = 1 if quick else 2
    scenario = Scenario.build(ScenarioSpec.section2(sites=("eBay",)), seed=2007)
    params = ScaleStudyParams(clients_per_wave=n_clients)
    plan = plan_scale(
        scenario, waves=1, config=SCALE_SESSION_CONFIG, params=params
    )

    n_completed = 0

    def run_wave() -> None:
        nonlocal n_completed
        record = run_scale_unit(scenario, plan.config, plan.units[0], params)
        n_completed = record.n_completed

    # No classic-engine baseline: the per-object oracle is quadratic in the
    # population and unrunnable at this scale, which is the point of the
    # vector engine.  The report seeds a recorded first-run yardstick.
    m = measure(run_wave, ops=1, rounds=rounds, warmup=0)
    return {
        "optimised": m.seconds_per_op,
        "baseline": None,
        "clients": n_clients,
        "transfers_per_sec": float(n_completed) / m.seconds_per_op,
        **_measurement_fields(m),
    }


# --------------------------------------------------------------------------- #
# end-to-end mini-campaign
# --------------------------------------------------------------------------- #
def _bench_campaign_mini(quick: bool) -> Dict[str, Any]:
    # Imported lazily: the workloads package pulls in the whole stack and the
    # other benches should not pay for it.
    from repro.workloads.experiment import Section2Study
    from repro.workloads.scenario import Scenario, ScenarioSpec

    clients: Optional[List[str]] = ["Italy", "Sweden", "Taiwan"] if quick else None
    reps = 3 if quick else 6
    rounds = 2 if quick else 3
    scenario = Scenario.build(ScenarioSpec.section2(sites=("eBay",)), seed=2007)

    n_records = 0

    def run_campaign() -> None:
        nonlocal n_records
        study = Section2Study(scenario, repetitions=reps)
        store = study.run(sites=["eBay"], clients=clients, jobs=1)
        n_records = len(store)

    def run_mode(baseline_mode: bool) -> Measurement:
        previous = os.environ.get(_BASELINE_ENV_VAR)
        os.environ[_BASELINE_ENV_VAR] = "1" if baseline_mode else "0"
        try:
            return measure(run_campaign, ops=1, rounds=rounds)
        finally:
            if previous is None:
                del os.environ[_BASELINE_ENV_VAR]
            else:
                os.environ[_BASELINE_ENV_VAR] = previous

    opt = run_mode(False)
    base = run_mode(True)
    result = {
        "optimised": opt.seconds_per_op,
        "baseline": base.seconds_per_op,
        "records": n_records,
        "transfers_per_sec": float(n_records) / opt.seconds_per_op,
        "transfers_per_sec_baseline": float(n_records) / base.seconds_per_op,
        **_measurement_fields(opt),
    }
    return result


# --------------------------------------------------------------------------- #
# striped session: block-scheduler overhead per committed block
# --------------------------------------------------------------------------- #
def _bench_stripe_session(quick: bool) -> Dict[str, Any]:
    # Lazy imports for the same reason as the mini-campaign bench.
    from repro.stripe.blocks import StripeConfig
    from repro.util.units import kb
    from repro.workloads.scenario import Scenario, ScenarioSpec

    # Deliberately small blocks: the object is fixed, so shrinking the block
    # multiplies scheduler decisions (claim/commit/refill) while the fluid
    # work stays constant - the per-block cost isolates scheduler overhead.
    block_kb = 128.0 if quick else 64.0
    rounds = 2 if quick else 3
    scenario = Scenario.build(ScenarioSpec.section2(sites=("eBay",)), seed=2007)
    relays = scenario.relay_names[:2]
    stripe = StripeConfig(block_bytes=kb(block_kb), window=2)

    n_blocks = 0

    def run_session() -> None:
        nonlocal n_blocks
        universe = scenario.universe(0.0)
        result = universe.session.download_striped(
            "Taiwan", "eBay", scenario.resource, relays, stripe=stripe
        )
        n_blocks = result.n_blocks

    def run_mode(baseline_mode: bool) -> Measurement:
        previous = os.environ.get(_BASELINE_ENV_VAR)
        os.environ[_BASELINE_ENV_VAR] = "1" if baseline_mode else "0"
        try:
            first = measure(run_session, ops=1, rounds=1, warmup=1)
            if n_blocks <= 0:  # pragma: no cover - defensive
                raise RuntimeError("stripe bench committed no blocks")
            m = measure(run_session, ops=n_blocks, rounds=rounds, warmup=0)
            return Measurement(
                ns_per_op=m.ns_per_op,
                ops=m.ops,
                rounds=m.rounds,
                elapsed_s=m.elapsed_s + first.elapsed_s,
            )
        finally:
            if previous is None:
                del os.environ[_BASELINE_ENV_VAR]
            else:
                os.environ[_BASELINE_ENV_VAR] = previous

    opt = run_mode(False)
    base = run_mode(True)
    return {
        "optimised": opt.ns_per_op,
        "baseline": base.ns_per_op,
        "blocks": n_blocks,
        **_measurement_fields(opt),
    }


#: Registry, in report order.
BENCHES: Dict[str, BenchSpec] = {
    spec.name: spec
    for spec in (
        BenchSpec(
            "trace_scalar",
            "scalar trace queries: TraceCursor vs per-query searchsorted",
            "ns/op",
            _bench_trace_scalar,
        ),
        BenchSpec(
            "event_queue",
            "event queue push/cancel/pop churn (slots Event)",
            "ns/op",
            _bench_event_queue,
        ),
        BenchSpec(
            "alloc_disjoint",
            "max-min allocation, link-disjoint flows: fast path vs reference loop",
            "ns/op",
            _bench_alloc_disjoint,
        ),
        BenchSpec(
            "alloc_shared",
            "max-min allocation, shared links: reference loop (fast path inert)",
            "ns/op",
            _bench_alloc_shared,
        ),
        BenchSpec(
            "tick_breakpoint",
            "fluid tick at capacity breakpoints: incremental vs rebuild engine",
            "ns/op",
            _bench_tick_breakpoint,
        ),
        BenchSpec(
            "stripe_session",
            "striped session, small blocks: scheduler overhead per block",
            "ns/block",
            _bench_stripe_session,
        ),
        BenchSpec(
            "vec_epoch",
            "fluid epoch over a contended population: vector core vs oracle",
            "ns/op",
            _bench_vec_epoch,
        ),
        BenchSpec(
            "scale_campaign",
            "one full `repro scale` wave on the vector engine (wall seconds)",
            "s",
            _bench_scale_campaign,
        ),
        BenchSpec(
            "campaign_mini",
            "end-to-end Section2 mini-campaign: optimised vs baseline engine",
            "s",
            _bench_campaign_mini,
        ),
    )
}


def run_benches(
    names: Optional[Sequence[str]] = None,
    *,
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Dict[str, Any]]:
    """Run the named benches (default: all) and return name -> result."""
    selected = list(BENCHES) if names is None else list(names)
    unknown = [n for n in selected if n not in BENCHES]
    if unknown:
        raise ValueError(f"unknown bench(es) {unknown}; available: {list(BENCHES)}")
    from repro.obs.core import (
        global_observer,
        observe_enabled_from_env,
        reset_global_observer,
    )

    observing = observe_enabled_from_env()
    results: Dict[str, Dict[str, Any]] = {}
    for name in selected:
        if progress is not None:
            progress(name)
        obs = None
        if observing:
            # Fresh registry per bench so span counts attribute cleanly.
            reset_global_observer()
            obs = global_observer(create=True)
        result = BENCHES[name].run(quick)
        if obs is not None and obs.has_data:
            result["obs_summary"] = obs.span_summary()
        results[name] = result
    if observing:
        reset_global_observer()
    return results
