"""Performance measurement for the simulation kernel.

``repro.perf`` is the measurement layer behind the ``repro perf`` CLI
subcommand: deterministic microbenchmarks for the engine's hot paths
(allocation, trace queries, event queue, the fluid tick) plus an end-to-end
mini-campaign timer.  Every engine-level bench runs in both engine modes —
the optimised incremental path and the ``REPRO_ENGINE_BASELINE`` seed path —
so ``BENCH_engine.json`` records before/after numbers and the speedup each
PR claims is reproducible from the artefact itself.

Wall-clock access lives only here (and at the CLI edge): the simulation
core stays wall-clock-free per QA-D004.
"""

from repro.perf.benches import BENCHES, BenchSpec, run_benches
from repro.perf.microbench import Measurement, measure
from repro.perf.report import (
    BenchReport,
    compare_reports,
    format_comparison,
    format_report,
    load_report,
    seed_missing_baselines,
)

__all__ = [
    "BENCHES",
    "BenchSpec",
    "run_benches",
    "Measurement",
    "measure",
    "BenchReport",
    "compare_reports",
    "format_comparison",
    "format_report",
    "load_report",
    "seed_missing_baselines",
]
