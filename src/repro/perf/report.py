"""Machine-readable bench reports (``BENCH_engine.json``) and comparison.

A report records, per bench, the optimised-engine number, the
seed-engine-path (baseline-mode) number where the optimisation is
toggleable, and their ratio — so the perf trajectory committed at the repo
root carries its own before/after evidence.  ``compare_reports`` diffs two
reports' *optimised* numbers (current run vs a stored baseline file), which
is how ``repro perf --baseline`` detects regressions across PRs.
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = [
    "SCHEMA",
    "BenchReport",
    "Comparison",
    "load_report",
    "compare_reports",
    "format_report",
    "format_comparison",
    "seed_missing_baselines",
]

SCHEMA = "repro-perf/1"

#: Relative slowdown of a bench's optimised number (current vs stored) that
#: counts as a regression.  Generous by design: these are wall-clock numbers
#: from shared CI runners, and the gate is advisory (the CI job is
#: non-gating) — the threshold exists to rank noise out, not to block merges.
DEFAULT_TOLERANCE = 0.25


@dataclass
class BenchReport:
    """One ``repro perf`` run: per-bench results plus environment context."""

    benches: Dict[str, Dict[str, Any]]
    quick: bool = False
    schema: str = SCHEMA
    environment: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_results(
        cls, results: Dict[str, Dict[str, Any]], *, quick: bool
    ) -> "BenchReport":
        """Wrap raw bench results with schema and environment context."""
        env = {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "numpy": str(np.__version__),
            "machine": platform.machine(),
        }
        return cls(benches=results, quick=quick, environment=env)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "quick": self.quick,
            "environment": self.environment,
            "benches": self.benches,
        }

    def save(self, path: str) -> None:
        """Write the report as stable, diff-friendly JSON."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def load_report(path: str) -> BenchReport:
    """Load a report written by :meth:`BenchReport.save`."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    schema = data.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench report schema {schema!r} (expected {SCHEMA!r})"
        )
    benches = data.get("benches")
    if not isinstance(benches, dict):
        raise ValueError(f"{path}: malformed bench report (no 'benches' mapping)")
    return BenchReport(
        benches=benches,
        quick=bool(data.get("quick", False)),
        schema=str(schema),
        environment=dict(data.get("environment", {})),
    )


@dataclass(frozen=True)
class Comparison:
    """Current-vs-stored optimised number for one bench."""

    name: str
    unit: str
    current: float
    stored: float
    #: current / stored: > 1 means the current run is slower.
    ratio: float
    regressed: bool
    #: Span category whose cumulative time grew the most (relative), when
    #: both reports carry ``--obs`` span summaries - names the subsystem a
    #: regression lives in ("transfer", "tick", "probe", ...).
    suspect_category: Optional[str] = None
    #: Relative growth of the suspect category's cumulative span time.
    suspect_growth: Optional[float] = None


def _suspect_category(
    current: Dict[str, Any], stored: Dict[str, Any]
) -> Optional[tuple]:
    """Largest relative growth in per-category span time, if knowable.

    Both bench entries must carry an ``obs_summary`` block (written by
    ``repro perf --obs``).  Categories absent from the stored run are
    compared against a zero floor scaled to the smallest stored total, so
    a brand-new hot category still surfaces.  Returns ``(category,
    relative_growth)`` for the worst mover with positive growth, else
    ``None``.
    """
    cur_spans = (current.get("obs_summary") or {}).get("spans")
    old_spans = (stored.get("obs_summary") or {}).get("spans")
    if not isinstance(cur_spans, dict) or not isinstance(old_spans, dict):
        return None
    old_totals = {
        cat: float(entry.get("total_time", 0.0))
        for cat, entry in old_spans.items()
        if isinstance(entry, dict)
    }
    floor = min((v for v in old_totals.values() if v > 0.0), default=0.0)
    best: Optional[tuple] = None
    for cat, entry in cur_spans.items():
        if not isinstance(entry, dict):
            continue
        cur_total = float(entry.get("total_time", 0.0))
        old_total = old_totals.get(cat, 0.0)
        denom = old_total if old_total > 0.0 else floor
        if denom <= 0.0:
            continue
        growth = (cur_total - old_total) / denom
        if growth > 0.0 and (best is None or growth > best[1]):
            best = (cat, growth)
    return best


def compare_reports(
    current: BenchReport,
    stored: BenchReport,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Comparison]:
    """Compare the optimised numbers of two reports, bench by bench.

    Benches present in only one report are skipped (a new bench is not a
    regression).  A bench regresses when its current optimised number
    exceeds the stored one by more than ``tolerance`` (relative).
    """
    if tolerance < 0.0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    out: List[Comparison] = []
    for name, result in current.benches.items():
        stored_result = stored.benches.get(name)
        if stored_result is None:
            continue
        cur = _as_positive_float(result.get("optimised"))
        old = _as_positive_float(stored_result.get("optimised"))
        if cur is None or old is None:
            continue
        ratio = cur / old
        regressed = ratio > 1.0 + tolerance
        suspect = _suspect_category(result, stored_result) if regressed else None
        out.append(
            Comparison(
                name=name,
                unit=str(result.get("unit", "")),
                current=cur,
                stored=old,
                ratio=ratio,
                regressed=regressed,
                suspect_category=suspect[0] if suspect else None,
                suspect_growth=suspect[1] if suspect else None,
            )
        )
    return out


def seed_missing_baselines(
    report: BenchReport, prior: Optional[BenchReport] = None
) -> None:
    """Give baseline-less benches a recorded yardstick, in place.

    Benches without a toggleable seed path (e.g. ``event_queue``) measure
    nothing to divide by, so their ``baseline``/``speedup`` would stay null
    forever.  Instead, the first run records the bench's own optimised
    number as its baseline (tagged ``"baseline_source": "first-run"``);
    later runs inherit the stored number (``"recorded"``), so the speedup
    column tracks drift against the first recording.

    ``prior`` is the previously saved report (usually the ``--out`` file
    about to be overwritten).  Pass ``None`` — and get first-run seeding —
    when there is no prior report or its mode (quick vs full) differs,
    since quick and full workloads are not comparable.
    """
    for name, result in report.benches.items():
        if result.get("baseline") is not None:
            continue
        opt = _as_positive_float(result.get("optimised"))
        inherited = None
        if prior is not None:
            prev = prior.benches.get(name)
            if prev is not None:
                inherited = _as_positive_float(prev.get("baseline"))
        if inherited is not None:
            result["baseline"] = inherited
            result["baseline_source"] = "recorded"
        elif opt is not None:
            result["baseline"] = opt
            result["baseline_source"] = "first-run"
        else:
            continue
        result["speedup"] = result["baseline"] / opt if opt else None


def _as_positive_float(value: Any) -> Optional[float]:
    if isinstance(value, (int, float)) and float(value) > 0.0:
        return float(value)
    return None


def _fmt_value(value: Optional[float], unit: str) -> str:
    if value is None:
        return "n/a"
    if unit == "s":
        return f"{value:.3f} s"
    return f"{value:,.0f} {unit}"


def format_report(report: BenchReport) -> str:
    """Human-readable rendering of a report (the CLI's stdout view)."""
    lines = [
        f"engine benchmarks ({'quick' if report.quick else 'full'} mode, "
        "best-of-N per kernel; baseline = seed engine path)"
    ]
    header = f"  {'bench':<18} {'optimised':>14} {'baseline':>14} {'speedup':>8}"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for name, result in report.benches.items():
        unit = str(result.get("unit", ""))
        opt = _as_positive_float(result.get("optimised"))
        base = _as_positive_float(result.get("baseline"))
        speedup = _as_positive_float(result.get("speedup"))
        speedup_s = f"{speedup:.2f}x" if speedup is not None else "-"
        lines.append(
            f"  {name:<18} {_fmt_value(opt, unit):>14} "
            f"{_fmt_value(base, unit):>14} {speedup_s:>8}"
        )
        tps = _as_positive_float(result.get("transfers_per_sec"))
        if tps is not None:
            lines.append(f"  {'':<18} {tps:,.1f} transfers/sec (optimised)")
        src = result.get("baseline_source")
        if src == "first-run":
            lines.append(
                f"  {'':<18} baseline recorded this run (no seed-path toggle)"
            )
        elif src == "recorded":
            lines.append(
                f"  {'':<18} baseline inherited from first recording"
            )
    return "\n".join(lines)


def format_comparison(comparisons: List[Comparison], *, tolerance: float) -> str:
    """Human-readable regression report for ``repro perf --baseline``."""
    if not comparisons:
        return "no comparable benches between the two reports"
    lines = [f"comparison vs stored baseline (regression threshold +{tolerance:.0%}):"]
    header = f"  {'bench':<18} {'current':>14} {'stored':>14} {'ratio':>7}  status"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for cmp_ in comparisons:
        status = "REGRESSED" if cmp_.regressed else "ok"
        lines.append(
            f"  {cmp_.name:<18} {_fmt_value(cmp_.current, cmp_.unit):>14} "
            f"{_fmt_value(cmp_.stored, cmp_.unit):>14} {cmp_.ratio:>6.2f}x  {status}"
        )
        if cmp_.regressed and cmp_.suspect_category is not None:
            lines.append(
                f"  {'':<18} suspect: {cmp_.suspect_category!r} span time "
                f"grew {cmp_.suspect_growth:+.0%} (per --obs span summary)"
            )
        elif cmp_.regressed:
            lines.append(
                f"  {'':<18} (run both sides with --obs to attribute the "
                "regression to a span category)"
            )
    n_reg = sum(1 for c in comparisons if c.regressed)
    lines.append(
        f"{n_reg} regression(s) in {len(comparisons)} compared bench(es)"
        if n_reg
        else f"all {len(comparisons)} compared bench(es) within tolerance"
    )
    return "\n".join(lines)
