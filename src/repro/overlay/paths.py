"""Overlay path construction: pairing routes with the services on them.

An :class:`OverlayPathBuilder` wraps a topology, a relay registry and the
origin servers, and produces ready-to-use *path handles*: the route plus the
proxy (for indirect paths) needed to issue a download.  The core selection
layer works entirely in terms of these handles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.http.proxy import RelayProxy
from repro.http.server import WebServer
from repro.net.route import Route
from repro.net.topology import Topology
from repro.overlay.registry import RelayRegistry

__all__ = ["OverlayPath", "OverlayPathBuilder"]


@dataclass(frozen=True)
class OverlayPath:
    """A usable path: route plus the relay proxy when indirect.

    ``proxy is None`` exactly when the path is direct.
    """

    route: Route
    server: WebServer
    proxy: Optional[RelayProxy] = None

    def __post_init__(self) -> None:
        if self.route.is_indirect and self.proxy is None:
            raise ValueError("indirect path requires a proxy")
        if not self.route.is_indirect and self.proxy is not None:
            raise ValueError("direct path must not carry a proxy")
        if self.proxy is not None and self.proxy.name != self.route.via:
            raise ValueError(
                f"proxy {self.proxy.name!r} does not match route via {self.route.via!r}"
            )

    @property
    def is_indirect(self) -> bool:
        return self.route.is_indirect

    @property
    def via(self) -> Optional[str]:
        """Relay name, or ``None`` for the direct path."""
        return self.route.via

    @property
    def label(self) -> str:
        """Short display label (``direct`` or the relay name)."""
        return self.via or "direct"


class OverlayPathBuilder:
    """Builds direct and indirect :class:`OverlayPath` handles.

    Parameters
    ----------
    topology:
        The network with all access and WAN links in place.
    registry:
        Deployed relay proxies.
    servers:
        Origin servers by name.
    """

    def __init__(
        self,
        topology: Topology,
        registry: RelayRegistry,
        servers: Dict[str, WebServer],
    ):
        self.topology = topology
        self.registry = registry
        self._servers = dict(servers)

    def server(self, name: str) -> WebServer:
        """Look up an origin server."""
        try:
            return self._servers[name]
        except KeyError:
            raise KeyError(f"unknown server {name!r}") from None

    def direct(self, client: str, server: str) -> OverlayPath:
        """The direct path handle from ``server`` to ``client``."""
        origin = self.server(server)  # fail fast on unknown servers
        return OverlayPath(
            route=self.topology.direct_route(client, server),
            server=origin,
        )

    def indirect(self, client: str, relay: str, server: str) -> OverlayPath:
        """The one-hop indirect path handle via ``relay``."""
        proxy = self.registry.proxy(relay)
        if not proxy.knows_origin(server):
            raise ValueError(f"relay {relay!r} cannot reach origin {server!r}")
        return OverlayPath(
            route=self.topology.indirect_route(client, relay, server),
            server=self.server(server),
            proxy=proxy,
        )

    def striped(
        self, client: str, relays: List[str], server: str
    ) -> List[OverlayPath]:
        """Path handles for a striped session: direct first, then ``relays``.

        The direct path always leads the list (it is the stripe's anchor
        lane and the last-resort carrier when every relay path dies);
        ``relays`` must be distinct deployed relay names.
        """
        self.registry.require_deployed(relays)
        if len(set(relays)) != len(relays):
            raise ValueError(f"duplicate relays in stripe set: {relays}")
        return [self.direct(client, server)] + [
            self.indirect(client, relay, server) for relay in relays
        ]

    def all_indirect(self, client: str, server: str) -> List[OverlayPath]:
        """Indirect path handles through every deployed relay (the full set)."""
        return [
            self.indirect(client, relay, server) for relay in self.registry.names
        ]
