"""Relay registry: the paper's "full set" of intermediate nodes.

The registry tracks every deployed relay proxy, which origins each can
reach, and hands out the candidate set that selection policies draw from.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.http.proxy import RelayProxy
from repro.http.server import WebServer

__all__ = ["RelayRegistry"]


class RelayRegistry:
    """Registry of deployed relay proxies (name -> proxy)."""

    def __init__(self) -> None:
        self._proxies: Dict[str, RelayProxy] = {}

    def deploy(self, name: str) -> RelayProxy:
        """Deploy (register) a relay's forwarding service; names are unique."""
        if name in self._proxies:
            raise ValueError(f"relay {name!r} already deployed")
        proxy = RelayProxy(name)
        self._proxies[name] = proxy
        return proxy

    def proxy(self, name: str) -> RelayProxy:
        """Look up a deployed relay."""
        try:
            return self._proxies[name]
        except KeyError:
            raise KeyError(f"relay {name!r} is not deployed") from None

    def register_origin_everywhere(self, server: WebServer) -> None:
        """Make an origin reachable through every deployed relay."""
        for proxy in self._proxies.values():
            proxy.register_origin(server)

    def require_deployed(self, names: Iterable[str]) -> None:
        """Fail fast unless every name in ``names`` is a deployed relay.

        Multi-path consumers (striped sessions) validate their whole relay
        set up front, so a typo surfaces before any flow starts.
        """
        missing = [name for name in names if name not in self._proxies]
        if missing:
            raise KeyError(
                f"relays {missing} are not deployed (have {self.names})"
            )

    @property
    def names(self) -> List[str]:
        """Names of all deployed relays, in deployment order (the full set)."""
        return list(self._proxies)

    def __len__(self) -> int:
        return len(self._proxies)

    def __contains__(self, name: object) -> bool:
        return name in self._proxies

    def __iter__(self) -> Iterable[RelayProxy]:  # pragma: no cover - thin
        return iter(self._proxies.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RelayRegistry({self.names})"
