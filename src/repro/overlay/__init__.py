"""Overlay layer: relay registry and path construction."""

from repro.overlay.monitor import PathEstimate, PathMonitor
from repro.overlay.paths import OverlayPath, OverlayPathBuilder
from repro.overlay.registry import RelayRegistry

__all__ = [
    "RelayRegistry",
    "OverlayPath",
    "OverlayPathBuilder",
    "PathMonitor",
    "PathEstimate",
]
