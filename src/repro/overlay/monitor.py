"""RON-style background path monitoring.

Resilient Overlay Networks (paper ref [1]) keep per-path quality estimates
fresh by probing *continuously in the background*, then route using the
table - no per-transfer measurement.  :class:`PathMonitor` implements that
approach on our substrate: it issues small range-request probes over every
monitored path on a fixed period (staggered so probes do not synchronise),
records the measured throughputs, and answers ranking queries with optional
staleness handling.

The monitor's probes are real fluid flows: they consume the client's access
bandwidth and contend with foreground transfers, so the monitoring overhead
the ablation (A9) reports is physical, not accounting fiction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.http.messages import ByteRange, HttpRequest
from repro.http.transfer import HttpTransfer, TcpParams, issue_download
from repro.overlay.paths import OverlayPath
from repro.tcp.fluid import FluidNetwork
from repro.util.units import kb
from repro.util.validation import check_positive

__all__ = ["PathEstimate", "PathMonitor"]


@dataclass(frozen=True)
class PathEstimate:
    """The monitor's latest knowledge of one path."""

    label: str
    throughput: float
    measured_at: float

    def age(self, now: float) -> float:
        """Seconds since this estimate was refreshed."""
        return now - self.measured_at


class PathMonitor:
    """Continuously probes a set of paths and maintains quality estimates.

    Parameters
    ----------
    network:
        The fluid engine of the universe this monitor lives in.
    paths:
        The monitored paths (typically the direct path plus every relay).
    resource:
        Resource to request probe ranges of.
    period:
        Seconds between successive probes of the *same* path.  Probes of
        different paths are staggered uniformly across the period.
    probe_bytes:
        Size of each monitoring probe (smaller than the selection probe -
        RON's probes are lightweight).
    stale_after:
        Estimates older than this many seconds are treated as unknown when
        ranking (a RON node whose probes stopped returning is "down").
    horizon:
        Simulation time after which no further probes are scheduled.
    """

    def __init__(
        self,
        network: FluidNetwork,
        paths: Sequence[OverlayPath],
        resource: str,
        *,
        period: float = 60.0,
        probe_bytes: float = kb(30),
        tcp: TcpParams = TcpParams(),
        stale_after: Optional[float] = None,
        horizon: float = float("inf"),
    ):
        if not paths:
            raise ValueError("need at least one path to monitor")
        labels = [p.label for p in paths]
        if len(set(labels)) != len(labels):
            raise ValueError(f"paths must be distinct, got {labels}")
        check_positive(period, "period")
        check_positive(probe_bytes, "probe_bytes")
        self._network = network
        self._paths = list(paths)
        self._resource = resource
        self.period = float(period)
        self.probe_bytes = float(probe_bytes)
        self._tcp = tcp
        self.stale_after = float(stale_after) if stale_after is not None else 3.0 * period
        self.horizon = float(horizon)
        self._estimates: Dict[str, PathEstimate] = {}
        #: Total bytes of monitoring traffic delivered (overhead accounting).
        self.probe_bytes_sent = 0.0
        #: Number of probes completed.
        self.probes_completed = 0
        self._started = False

    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Begin monitoring: stagger one probe chain per path."""
        if self._started:
            raise RuntimeError("monitor already started")
        self._started = True
        stagger = self.period / len(self._paths)
        for i, path in enumerate(self._paths):
            self._schedule_probe(path, delay=i * stagger)

    def _schedule_probe(self, path: OverlayPath, *, delay: float) -> None:
        sim = self._network.sim
        if sim.now + delay > self.horizon:
            return
        sim.schedule_after(
            delay, lambda: self._probe(path), name=f"monitor:{path.label}"
        )

    def _probe(self, path: OverlayPath) -> None:
        size = path.server.resource_size(self._resource)
        x = min(int(self.probe_bytes), size)
        request = HttpRequest(
            host=path.server.name,
            path=self._resource,
            byte_range=ByteRange.first_bytes(x),
            via=path.via,
        )

        def _done(transfer: HttpTransfer) -> None:
            now = self._network.sim.now
            self._estimates[path.label] = PathEstimate(
                label=path.label,
                throughput=transfer.throughput(),
                measured_at=now,
            )
            self.probe_bytes_sent += transfer.flow.size
            self.probes_completed += 1

        issue_download(
            self._network,
            path.route,
            path.server,
            request,
            proxy=path.proxy,
            tcp=self._tcp,
            on_complete=_done,
            name=f"monitor-probe:{path.label}",
        )
        # The next probe of this path fires one period later regardless of
        # whether this one completes (a dead path keeps being retried).
        self._schedule_probe(path, delay=self.period)

    # ------------------------------------------------------------------ #
    def estimate(self, label: str) -> Optional[PathEstimate]:
        """Latest estimate for a path, or ``None`` if never measured."""
        return self._estimates.get(label)

    def fresh_estimates(self, now: Optional[float] = None) -> List[PathEstimate]:
        """All estimates younger than ``stale_after``, best first."""
        now = self._network.sim.now if now is None else now
        fresh = [
            e for e in self._estimates.values() if e.age(now) <= self.stale_after
        ]
        return sorted(fresh, key=lambda e: -e.throughput)

    def best_path(self, *, among: Optional[Sequence[str]] = None) -> Optional[str]:
        """Label of the freshest-known best path (None when nothing known).

        ``among`` restricts the ranking to a subset of labels (e.g. relays
        only, to compare the best relay against the direct estimate).
        """
        candidates = self.fresh_estimates()
        if among is not None:
            allowed = set(among)
            candidates = [e for e in candidates if e.label in allowed]
        return candidates[0].label if candidates else None

    def path_by_label(self, label: str) -> OverlayPath:
        """The monitored path object with the given label."""
        for p in self._paths:
            if p.label == label:
                return p
        raise KeyError(f"monitor does not track path {label!r}")

    @property
    def labels(self) -> List[str]:
        return [p.label for p in self._paths]
