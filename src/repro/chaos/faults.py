"""Deterministic fault injection: declarative plans -> trace rewrites.

PR 4's failure model knows exactly one fault: a clean binary crash
(capacity 0 for an interval).  Real failures are messier - Qazi & Moors
and the gray-failure literature describe *partial* capacity loss, flapping
links, and outages *correlated* across every path sharing an upstream
segment.  This module generalises the outage machinery to that taxonomy.

A :class:`FaultWindow` scales a link's capacity by ``factor`` over an
interval: ``factor == 0`` is the familiar blackout, ``0 < factor < 1`` is
a gray failure (the link limps, it does not die).
:func:`apply_fault_windows` rewrites a capacity trace accordingly -
breakpoints *inside* a window are scaled, not swallowed, so a gray window
over a time-varying trace preserves the underlying shape at reduced
amplitude.  Because injection happens by rewriting the immutable capacity
traces before any engine runs, both engine paths (the classic per-object
oracle and the vectorised SoA core) see identical fault conditions with
no engine-specific fault code: the vector engine's dynamic-trace cursors
carry the rewritten breakpoints exactly like the classic engine's.

:func:`compile_fault_plan` turns a (family, intensity) coordinate plus the
target link names into the per-link window map scenarios consume:

* ``gray``        - direct WAN + primary overlay egress degraded to a
  fraction of capacity for the window;
* ``flap``        - the same links on a seeded on/off duty cycle;
* ``correlated``  - one draw blacks out the *shared site egress bundle*
  (direct WAN plus every ``site -> relay`` segment of the offered set),
  the shared-bottleneck structure of `overlay/paths.py` made failure;
* ``partition``   - the site-side egress of the likely transfer carriers
  (direct WAN + primary-relay ingress) dies while the relay itself stays
  reachable; probes issued before onset succeed, the committed transfer
  then stalls at zero rate, and only the PR 4 stall watchdog can notice;
* ``none``        - the within-cell baseline (empty plan).

Everything is pure data: fault timing is drawn by the *caller* from
seed-bank labels, so the same plan is compiled for every mechanism arm in
a study slot regardless of worker count or execution order.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.net.trace import CapacityTrace
from repro.util.validation import check_non_negative

__all__ = [
    "FAULT_FAMILIES",
    "FAULT_INTENSITIES",
    "FaultWindow",
    "FaultIntensity",
    "intensity_params",
    "apply_fault_windows",
    "flapping_windows",
    "compile_fault_plan",
    "blackout_spans",
    "plan_spans",
    "degraded_seconds",
]

#: Fault families the chaos layer knows how to compile.
FAULT_FAMILIES = ("none", "gray", "flap", "correlated", "partition")

#: Intensity grid every family is parameterised over.
FAULT_INTENSITIES = ("mild", "severe")


@dataclass(frozen=True)
class FaultWindow:
    """Scale a link's capacity by ``factor`` over ``[start, start+duration)``.

    ``factor == 0`` is a blackout (exactly an :class:`~repro.net.failures.
    Outage`); ``0 < factor < 1`` is a gray failure.  Zero-length windows
    are legal degenerate no-ops, mirroring :class:`Outage`.
    """

    start: float
    duration: float
    factor: float = 0.0

    def __post_init__(self) -> None:
        check_non_negative(self.start, "start")
        check_non_negative(self.duration, "duration")
        if not 0.0 <= self.factor < 1.0:
            raise ValueError(
                f"factor must be in [0, 1) - 1.0 would be a no-op window - "
                f"got {self.factor}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def is_blackout(self) -> bool:
        return self.factor == 0.0

    def overlaps(self, t0: float, t1: float) -> bool:
        """True when the window intersects ``[t0, t1)`` (empty never does)."""
        return self.duration > 0.0 and self.start < t1 and t0 < self.end


@dataclass(frozen=True)
class FaultIntensity:
    """One row of the intensity grid: how hard each family hits.

    ``gray_factor`` is the capacity multiplier gray windows apply;
    ``duration`` is the whole fault episode's length; flapping cycles
    through ``flap_period``-second periods spending ``flap_duty`` of each
    period dark.
    """

    gray_factor: float
    duration: float
    flap_period: float
    flap_duty: float

    def __post_init__(self) -> None:
        if not 0.0 < self.gray_factor < 1.0:
            raise ValueError(f"gray_factor must be in (0, 1), got {self.gray_factor}")
        if self.duration <= 0.0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.flap_period <= 0.0:
            raise ValueError(f"flap_period must be positive, got {self.flap_period}")
        if not 0.0 < self.flap_duty < 1.0:
            raise ValueError(f"flap_duty must be in (0, 1), got {self.flap_duty}")


_INTENSITY: Dict[str, FaultIntensity] = {
    "mild": FaultIntensity(
        gray_factor=0.25, duration=240.0, flap_period=60.0, flap_duty=0.5
    ),
    "severe": FaultIntensity(
        gray_factor=0.05, duration=480.0, flap_period=40.0, flap_duty=0.75
    ),
}


def intensity_params(intensity: str) -> FaultIntensity:
    """The grid row for ``intensity`` (raises on unknown names)."""
    try:
        return _INTENSITY[intensity]
    except KeyError:
        raise ValueError(
            f"unknown intensity {intensity!r}; expected one of {FAULT_INTENSITIES}"
        ) from None


def _value_at(times: Sequence[float], values: Sequence[float], t: float) -> float:
    """Right-continuous sample of a raw breakpoint list (no trace object)."""
    i = bisect.bisect_right(times, t) - 1
    return values[max(i, 0)]


def apply_fault_windows(
    trace: CapacityTrace, windows: Sequence[FaultWindow]
) -> CapacityTrace:
    """Return a copy of ``trace`` with capacity scaled inside each window.

    The generalisation of :func:`~repro.net.failures.apply_outages`:
    windows must be non-overlapping; within each window every capacity
    value - including breakpoints the underlying trace takes *inside* the
    window - is multiplied by the window's factor, and the underlying
    capacity resumes at the window's end (right-continuous semantics
    preserved).  Blackout windows (``factor == 0``) produce exactly the
    trace :func:`apply_outages` would.  Zero-length windows are dropped;
    back-to-back windows sharing a breakpoint coalesce cleanly because the
    later window's entry breakpoint overwrites the earlier one's resume
    breakpoint at the shared instant.
    """
    windows = [w for w in windows if w.duration > 0.0]
    if not windows:
        return trace
    ordered = sorted(windows, key=lambda w: w.start)
    for prev, nxt in zip(ordered, ordered[1:]):
        if nxt.start < prev.end:
            raise ValueError(
                f"fault windows overlap: [{prev.start}, {prev.end}) and "
                f"[{nxt.start}, {nxt.end})"
            )
    times = list(trace.times)
    values = list(trace.values)
    for w in ordered:
        new_times: List[float] = []
        new_values: List[float] = []
        resumed = _value_at(times, values, w.end)
        entry = w.factor * _value_at(times, values, w.start)
        inserted_start = False
        inserted_end = False
        for t, v in zip(times, values):
            if t < w.start:
                new_times.append(t)
                new_values.append(v)
            elif t < w.end:
                if not inserted_start:
                    new_times.append(w.start)
                    new_values.append(entry)
                    inserted_start = True
                if t > w.start:
                    # Interior breakpoints are *scaled*, not swallowed: a
                    # gray window preserves the trace's shape at reduced
                    # amplitude.  (For factor 0 these all scale to 0 and
                    # the coalesce pass below removes the repeats,
                    # recovering apply_outages' output exactly.)
                    new_times.append(t)
                    new_values.append(w.factor * v)
            else:
                if not inserted_start:
                    new_times.append(w.start)
                    new_values.append(entry)
                    inserted_start = True
                if not inserted_end:
                    new_times.append(w.end)
                    new_values.append(resumed)
                    inserted_end = True
                if t > w.end:
                    new_times.append(t)
                    new_values.append(v)
        if not inserted_start:  # window starts after the last breakpoint
            new_times.append(w.start)
            new_values.append(entry)
        if not inserted_end:
            new_times.append(w.end)
            new_values.append(resumed)
        times, values = new_times, new_values
    kept_times = [times[0]]
    kept_values = [values[0]]
    for t, v in zip(times[1:], values[1:]):
        if v == kept_values[-1]:
            continue
        kept_times.append(t)
        kept_values.append(v)
    return CapacityTrace(kept_times, kept_values)


def flapping_windows(
    onset: float,
    duration: float,
    *,
    period: float,
    duty: float,
) -> List[FaultWindow]:
    """Seedless on/off duty cycle: the deterministic skeleton of a flap.

    Starting at ``onset``, each ``period``-second cycle spends its first
    ``duty`` fraction dark (capacity 0) and the rest up, until the episode
    ends at ``onset + duration``; the final dark window is clipped to the
    episode boundary (possibly to zero length, which
    :func:`apply_fault_windows` then drops).
    """
    if period <= 0.0 or not 0.0 < duty < 1.0:
        raise ValueError(f"need period > 0 and 0 < duty < 1, got {period}, {duty}")
    check_non_negative(duration, "duration")
    windows: List[FaultWindow] = []
    t = onset
    end = onset + duration
    while t < end:
        down = min(duty * period, end - t)
        windows.append(FaultWindow(start=t, duration=down, factor=0.0))
        t += period
    return windows


def compile_fault_plan(
    family: str,
    intensity: str,
    *,
    direct_link: str,
    overlay_link: str,
    egress_links: Sequence[str],
    onset: float,
) -> Dict[str, List[FaultWindow]]:
    """Compile one (family, intensity) coordinate into a per-link plan.

    Parameters
    ----------
    direct_link:
        The direct WAN segment (``wan:site->client``).
    overlay_link:
        The primary relay's overlay egress (``wan:relay0->client``).
    egress_links:
        The site-side egress bundle toward the offered relays
        (``wan:site->relayX`` in offered order); the shared upstream that
        correlated draws take down together.  The head entry is the
        primary relay's ingress, which partitions sever.
    onset:
        Fault start time (caller draws it from seed-bank labels).
    """
    if family not in FAULT_FAMILIES:
        raise ValueError(
            f"unknown fault family {family!r}; expected one of {FAULT_FAMILIES}"
        )
    if family == "none":
        return {}
    check_non_negative(onset, "onset")
    if not egress_links:
        raise ValueError("egress_links must name at least the primary relay ingress")
    p = intensity_params(intensity)
    if family == "gray":
        gray = [FaultWindow(onset, p.duration, p.gray_factor)]
        return {direct_link: list(gray), overlay_link: list(gray)}
    if family == "flap":
        flaps = flapping_windows(
            onset, p.duration, period=p.flap_period, duty=p.flap_duty
        )
        return {direct_link: list(flaps), overlay_link: list(flaps)}
    black = [FaultWindow(onset, p.duration, 0.0)]
    if family == "correlated":
        # One draw, every path through the site's egress: dict.fromkeys
        # keeps offered order while deduplicating against direct_link.
        targets = dict.fromkeys([direct_link, *egress_links])
        return {name: list(black) for name in targets}
    # partition: sever the site-side egress of the two likely transfer
    # carriers (direct WAN, primary-relay ingress).  The relay stays up -
    # its access and overlay legs are untouched - so the failure is
    # invisible until a committed transfer crosses a dead segment.
    targets = dict.fromkeys([direct_link, egress_links[0]])
    return {name: list(black) for name in targets}


def blackout_spans(
    plan: Mapping[str, Sequence[FaultWindow]],
) -> Dict[str, List[Tuple[float, float]]]:
    """Per-link ``(start, end)`` spans of the plan's *blackout* windows.

    The shape the runtime sanitizer registers (QA-R006): only full
    blackouts assert zero delivery, gray windows legitimately carry bytes.
    """
    spans: Dict[str, List[Tuple[float, float]]] = {}
    for name, windows in plan.items():
        black = [(w.start, w.end) for w in windows if w.is_blackout and w.duration > 0]
        if black:
            spans[name] = sorted(black)
    return spans


def plan_spans(
    plan: Mapping[str, Sequence[FaultWindow]],
) -> List[Tuple[float, float]]:
    """The merged union of every window in the plan, as ``(start, end)``.

    Link-agnostic degraded time: the intervals during which *some* link is
    faulted, fused across links and windows.
    """
    raw = sorted(
        (w.start, w.end)
        for windows in plan.values()
        for w in windows
        if w.duration > 0
    )
    fused: List[Tuple[float, float]] = []
    for start, end in raw:
        if fused and start <= fused[-1][1]:
            fused[-1] = (fused[-1][0], max(fused[-1][1], end))
        else:
            fused.append((start, end))
    return fused


def degraded_seconds(
    spans: Sequence[Tuple[float, float]], t0: float, t1: float
) -> float:
    """Measure of ``spans`` (non-overlapping, e.g. :func:`plan_spans`)
    intersected with ``[t0, t1]``."""
    if t1 < t0:
        raise ValueError(f"t1={t1} must be >= t0={t0}")
    return sum(max(0.0, min(end, t1) - max(start, t0)) for start, end in spans)
