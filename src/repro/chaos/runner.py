"""Runner-level fault injection: kill pool workers at deterministic points.

Simulation-time faults (``chaos.faults``) stress the *protocols*; this
module stresses the *executor*.  A :class:`RunnerFaultPlan` names completed-
unit counts at which the parent kills one live worker outright (SIGKILL -
no cleanup, no checkpoint flush from the victim), exercising the pool's
crash machinery: in-flight requeue, respawn, stale-result crediting and
idempotent completion.  The merged artefact must stay byte-identical to an
undisturbed run - units are pure functions of the plan, so worker murder
is invisible in the output by construction, and the kill/resume fuzz test
holds the executor to that.

Victim choice among live workers is drawn from the plan's own seed, so a
fuzz failure reproduces exactly.  The artefact never depends on which
worker dies (or that any does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["RunnerFaultPlan", "RunnerFaultInjector"]


@dataclass(frozen=True)
class RunnerFaultPlan:
    """Declarative worker-kill schedule for one campaign execution.

    Attributes
    ----------
    kill_after:
        Completed-unit counts at which to kill one live worker; each entry
        fires once, in sorted order.  ``(3, 7)`` kills a worker as the 3rd
        and again as the 7th completion lands.
    seed:
        Seeds the victim draw among live workers.
    """

    kill_after: Tuple[int, ...]
    seed: int = 20070326

    def __post_init__(self) -> None:
        if not self.kill_after:
            raise ValueError("kill_after must name at least one kill point")
        if any(int(k) < 1 for k in self.kill_after):
            raise ValueError(
                f"kill points are 1-based completion counts, got {self.kill_after}"
            )

    def injector(self) -> "RunnerFaultInjector":
        """Fresh mutable per-execution state (plans are reusable)."""
        return RunnerFaultInjector(self)


class RunnerFaultInjector:
    """Per-execution state of a :class:`RunnerFaultPlan`.

    The pool asks :meth:`victim` after every completion; the injector
    consumes its kill points in order and records what it did in
    :attr:`kills` for the fuzz harness to assert on.
    """

    def __init__(self, plan: RunnerFaultPlan):
        self._pending: List[int] = sorted(int(k) for k in plan.kill_after)
        self._rng = np.random.default_rng(plan.seed)
        #: ``(completed_count, worker_id)`` per kill actually issued.
        self.kills: List[Tuple[int, int]] = []

    def victim(self, completed: int, worker_ids: Sequence[int]) -> Optional[int]:
        """Worker to kill now, or ``None``.

        Fires when ``completed`` reaches the next pending kill point and at
        least one worker is alive; a point that passes with no live workers
        is consumed without effect rather than rescheduled (the campaign is
        presumably ending anyway).
        """
        if not self._pending or completed < self._pending[0]:
            return None
        self._pending.pop(0)
        ids = list(worker_ids)
        if not ids:
            return None
        wid = ids[int(self._rng.integers(0, len(ids)))]
        self.kills.append((completed, wid))
        return wid
