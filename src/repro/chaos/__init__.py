"""repro.chaos: deterministic fault injection (DESIGN.md §13).

Two layers share this package:

* :mod:`repro.chaos.faults` - simulation-time faults.  Declarative
  :class:`FaultWindow` plans (gray degradation, flapping, correlated
  blackouts, partitions) compile into capacity-trace rewrites that both
  transport engines consume unchanged.
* :mod:`repro.chaos.runner` - process-level faults.  A
  :class:`RunnerFaultPlan` kills pool workers at deterministic points to
  prove the executor's crash-consistent resume.
"""

from repro.chaos.faults import (
    FAULT_FAMILIES,
    FAULT_INTENSITIES,
    FaultIntensity,
    FaultWindow,
    apply_fault_windows,
    blackout_spans,
    compile_fault_plan,
    degraded_seconds,
    flapping_windows,
    intensity_params,
    plan_spans,
)
from repro.chaos.runner import RunnerFaultInjector, RunnerFaultPlan

__all__ = [
    "FAULT_FAMILIES",
    "FAULT_INTENSITIES",
    "FaultIntensity",
    "FaultWindow",
    "RunnerFaultInjector",
    "RunnerFaultPlan",
    "apply_fault_windows",
    "blackout_spans",
    "compile_fault_plan",
    "degraded_seconds",
    "flapping_windows",
    "intensity_params",
    "plan_spans",
]
