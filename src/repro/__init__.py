"""repro: a reproduction of "A Performance Analysis of Indirect Routing".

Opos, Ramabhadran, Terry, Pasquale, Snoeren, Vahdat (IPPS 2007) measured,
on PlanetLab, how much end-to-end throughput can be gained by routing large
HTTP downloads through a single intermediate overlay node selected with an
x-byte range-request throughput probe.  This package rebuilds the entire
system on a deterministic flow-level network simulator:

``repro.sim``
    Discrete-event kernel (event queue, clock).
``repro.net``
    Nodes, links, stochastic capacity processes, topology, routes.
``repro.tcp``
    TCP models, max-min fair fluid transport engine, Reno validator.
``repro.http``
    HTTP messages, range-request algebra, origin servers, relay proxies.
``repro.overlay``
    Relay registry and overlay path construction.
``repro.core``
    The paper's contribution: probe engine, selection session, policies.
``repro.workloads``
    PlanetLab catalogues, calibration, scenarios, study drivers.
``repro.runner``
    Campaign execution: work-unit planning, the parallel/resumable
    executor, shard checkpoints, progress telemetry.
``repro.trace``
    Measurement records and storage.
``repro.analysis``
    Every paper table and figure, computed from measurement stores.

Quick start (see also examples/quickstart.py)::

    from repro import Scenario, ScenarioSpec, run_paired_transfer

    scenario = Scenario.build(ScenarioSpec.section2(sites=("eBay",)), seed=1)
    record = run_paired_transfer(
        scenario, study="demo", client="Italy", site="eBay",
        repetition=0, start_time=0.0, offered=["Princeton"],
    )
    print(record.selected_via, f"{record.improvement_percent:.1f}%")
"""

from repro._version import __version__
from repro.core import (
    DEFAULT_PROBE_BYTES,
    ProbeEngine,
    ProbeMode,
    SessionConfig,
    SessionResult,
    TransferSession,
    UniformRandomSetPolicy,
    UtilizationWeightedPolicy,
)
from repro.runner import CampaignPlan, WorkUnit, execute_plan
from repro.trace import TraceStore, TransferRecord
from repro.workloads import (
    CalibrationParams,
    Scenario,
    ScenarioSpec,
    Section2Study,
    Section4Study,
    run_paired_transfer,
)

__all__ = [
    "__version__",
    "DEFAULT_PROBE_BYTES",
    "ProbeMode",
    "ProbeEngine",
    "SessionConfig",
    "SessionResult",
    "TransferSession",
    "UniformRandomSetPolicy",
    "UtilizationWeightedPolicy",
    "TraceStore",
    "TransferRecord",
    "CampaignPlan",
    "WorkUnit",
    "execute_plan",
    "CalibrationParams",
    "Scenario",
    "ScenarioSpec",
    "Section2Study",
    "Section4Study",
    "run_paired_transfer",
]
