"""Improvement distributions and their relation to client throughput.

Covers three of the paper's artefacts:

* **Fig. 1** - the aggregate histogram of improvements over all clients
  (conditioned on the indirect path being selected), with its summary
  statistics (mean ~49%, median ~37%, 84% of mass in [0, 100]%);
* **Fig. 2** - the same histogram per client;
* **Fig. 3** - improvement versus direct-path throughput per
  (client, relay), whose downward trend shows improvement is inversely
  related to client throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.metrics import improvements_when_indirect
from repro.trace.store import TraceStore
from repro.util.stats import fraction_below, fraction_between, percent_histogram
from repro.util.units import bytes_per_s_to_mbps

__all__ = [
    "DEFAULT_BIN_EDGES",
    "ImprovementHistogram",
    "improvement_histogram",
    "per_client_histograms",
    "ImprovementVsThroughput",
    "improvement_vs_throughput",
]

#: Fig. 1-style bins: 25%-wide buckets from -200% to +300%, with outliers
#: clipped into the edge bins by :func:`~repro.util.stats.percent_histogram`.
DEFAULT_BIN_EDGES: Tuple[float, ...] = tuple(np.arange(-200.0, 325.0, 25.0))


@dataclass(frozen=True)
class ImprovementHistogram:
    """A Fig. 1 / Fig. 2 histogram plus its headline statistics."""

    label: str
    n_points: int
    percentages: np.ndarray
    edges: np.ndarray
    mean: float
    median: float
    fraction_negative: float
    fraction_0_to_100: float

    def peak_bin(self) -> Tuple[float, float]:
        """The (low edge, high edge) of the most populated bin."""
        if self.percentages.size == 0 or self.n_points == 0:
            raise ValueError("histogram is empty")
        i = int(np.argmax(self.percentages))
        return (float(self.edges[i]), float(self.edges[i + 1]))


def improvement_histogram(
    store: TraceStore,
    *,
    label: str = "all clients",
    bin_edges: Tuple[float, ...] = DEFAULT_BIN_EDGES,
) -> ImprovementHistogram:
    """Build the aggregate improvement histogram (indirect-selected rows)."""
    imps = improvements_when_indirect(store)
    pct, edges = percent_histogram(imps, bin_edges)
    return ImprovementHistogram(
        label=label,
        n_points=int(imps.size),
        percentages=pct,
        edges=edges,
        mean=float(np.mean(imps)) if imps.size else float("nan"),
        median=float(np.median(imps)) if imps.size else float("nan"),
        fraction_negative=fraction_below(imps, 0.0),
        fraction_0_to_100=fraction_between(imps, 0.0, 100.0),
    )


def per_client_histograms(
    store: TraceStore,
    *,
    clients: Optional[List[str]] = None,
    bin_edges: Tuple[float, ...] = DEFAULT_BIN_EDGES,
) -> Dict[str, ImprovementHistogram]:
    """Fig. 2: one improvement histogram per client."""
    groups = store.group_by("client")
    names = clients if clients is not None else sorted(groups)
    out: Dict[str, ImprovementHistogram] = {}
    for name in names:
        sub = groups.get(name, TraceStore())
        out[name] = improvement_histogram(sub, label=name, bin_edges=bin_edges)
    return out


@dataclass(frozen=True)
class ImprovementVsThroughput:
    """Fig. 3 data for one population: scatter plus a fitted linear trend.

    ``slope`` is in percent improvement per Mbps of direct throughput; the
    paper's downward trend corresponds to a negative slope.
    """

    label: str
    direct_mbps: np.ndarray
    improvement_percent: np.ndarray
    slope: float
    intercept: float

    @property
    def is_downward(self) -> bool:
        """True when improvement decreases with client throughput."""
        return self.slope < 0.0

    def binned_means(self, n_bins: int = 6) -> Tuple[np.ndarray, np.ndarray]:
        """Equal-count bin centres and mean improvements (plot-friendly)."""
        if self.direct_mbps.size == 0:
            return np.zeros(0), np.zeros(0)
        order = np.argsort(self.direct_mbps)
        xs = self.direct_mbps[order]
        ys = self.improvement_percent[order]
        splits_x = np.array_split(xs, n_bins)
        splits_y = np.array_split(ys, n_bins)
        centres = np.array([float(np.mean(b)) for b in splits_x if b.size])
        means = np.array([float(np.mean(b)) for b in splits_y if b.size])
        return centres, means


def improvement_vs_throughput(
    store: TraceStore,
    *,
    label: str = "all",
    client: Optional[str] = None,
    relay: Optional[str] = None,
) -> ImprovementVsThroughput:
    """Fig. 3: improvement vs direct throughput, optionally per client/relay.

    Only indirect-selected transfers contribute (they are the ones with a
    meaningful improvement value), matching the paper's per-intermediate
    plots.
    """
    sub = store.filter(used_indirect=True)
    if client is not None:
        sub = sub.filter(client=client)
    if relay is not None:
        sub = sub.filter(selected_via=relay)
    direct = bytes_per_s_to_mbps(sub.column("direct_throughput"))
    imp = sub.column("improvement_percent")
    if direct.size >= 2 and float(np.ptp(direct)) > 0.0:
        slope, intercept = np.polyfit(direct, imp, 1)
    else:
        slope, intercept = 0.0, float(np.mean(imp)) if imp.size else 0.0
    return ImprovementVsThroughput(
        label=label,
        direct_mbps=direct,
        improvement_percent=imp,
        slope=float(slope),
        intercept=float(intercept),
    )
