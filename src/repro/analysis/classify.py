"""Post-hoc client classification from *measured* throughputs.

The paper buckets clients by their measured average direct-path throughput
and by its variability (the "post-hoc analysis" behind Table I).  We mirror
that: classification uses only what the control client observed, never the
generative ground truth - so these functions work on real traces too.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.trace.store import TraceStore
from repro.util.stats import coefficient_of_variation
from repro.workloads.profiles import ThroughputClass

__all__ = ["MeasuredClientProfile", "classify_clients", "DEFAULT_CV_THRESHOLD"]

#: Clients whose direct-throughput coefficient of variation exceeds this are
#: labelled high-variability.  0.35 separates the calibrated low/high
#: modulation regimes cleanly.
DEFAULT_CV_THRESHOLD: float = 0.35


@dataclass(frozen=True)
class MeasuredClientProfile:
    """What the measurements say about one client."""

    client: str
    n_transfers: int
    mean_direct_throughput: float
    throughput_class: ThroughputClass
    cv: float
    high_variability: bool

    @property
    def is_med_or_low(self) -> bool:
        """True for Low/Medium clients (the paper's desirable population)."""
        return self.throughput_class is not ThroughputClass.HIGH


def classify_clients(
    store: TraceStore,
    *,
    cv_threshold: float = DEFAULT_CV_THRESHOLD,
) -> Dict[str, MeasuredClientProfile]:
    """Classify every client appearing in ``store`` from its control data.

    Returns a mapping ``client name -> MeasuredClientProfile``.
    """
    if cv_threshold <= 0.0:
        raise ValueError(f"cv_threshold must be positive, got {cv_threshold}")
    out: Dict[str, MeasuredClientProfile] = {}
    for client, sub in store.group_by("client").items():
        direct = sub.column("direct_throughput")
        mean = float(np.mean(direct))
        cv = coefficient_of_variation(direct)
        out[client] = MeasuredClientProfile(
            client=client,
            n_transfers=len(sub),
            mean_direct_throughput=mean,
            throughput_class=ThroughputClass.classify(mean),
            cv=cv,
            high_variability=bool(cv > cv_threshold),
        )
    return out
