"""Probe prediction quality, measured against simulator ground truth.

The paper attributes both its penalties (§3.1) and the imperfect Table III
correlation (§4.3) to the probe "not [being] a perfect way of making
decisions".  Using counterfactual records
(:mod:`repro.workloads.counterfactual`) we can quantify exactly how good
the first-x-bytes predictor is:

* **accuracy** - how often the selected path was truly the faster one;
* **regret** - throughput forgone when it was not;
* **capture ratio** - realised improvement as a fraction of what an oracle
  choosing the truly-faster path would have achieved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.workloads.counterfactual import CounterfactualRecord

__all__ = ["PredictionQuality", "prediction_quality"]


@dataclass(frozen=True)
class PredictionQuality:
    """Aggregate decision-quality statistics for a set of transfers."""

    n_transfers: int
    accuracy: float
    mean_regret: float
    max_regret: float
    oracle_mean_improvement: float
    realised_mean_improvement: float

    @property
    def capture_ratio(self) -> float:
        """Realised / oracle mean improvement (NaN when the oracle gains 0)."""
        if self.oracle_mean_improvement <= 0.0:
            return float("nan")
        return self.realised_mean_improvement / self.oracle_mean_improvement


def prediction_quality(records: Sequence[CounterfactualRecord]) -> PredictionQuality:
    """Summarise probe decision quality over counterfactual records."""
    recs = list(records)
    if not recs:
        return PredictionQuality(0, float("nan"), float("nan"), float("nan"),
                                 float("nan"), float("nan"))
    accuracy = float(np.mean([r.decision_correct for r in recs]))
    regrets = np.array([r.regret for r in recs])
    oracle_imp = float(np.mean([100.0 * r.achievable_improvement for r in recs]))
    realised = np.array(
        [
            100.0
            * (r.selected_throughput - r.direct_throughput)
            / r.direct_throughput
            for r in recs
        ]
    )
    return PredictionQuality(
        n_transfers=len(recs),
        accuracy=accuracy,
        mean_regret=float(np.mean(regrets)),
        max_regret=float(np.max(regrets)),
        oracle_mean_improvement=oracle_imp,
        realised_mean_improvement=float(np.mean(realised)),
    )
