"""One-shot full report: every applicable artefact for a measurement store.

``full_report`` inspects the store's shape (candidate-set sizes, client
count) and renders the artefacts that make sense for it, in paper order.
The CLI's ``report --artifact all`` uses this.
"""

from __future__ import annotations

from typing import List

from repro.analysis.improvement import (
    improvement_histogram,
    improvement_vs_throughput,
    per_client_histograms,
)
from repro.analysis.metrics import headline_stats
from repro.analysis.penalties import penalty_table
from repro.analysis.random_set import random_set_curves
from repro.analysis.report import (
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_headline,
    render_table1,
    render_table2,
    render_table3,
)
from repro.analysis.timeseries import indirect_throughput_series
from repro.analysis.utilization import (
    top_relays_per_client,
    total_utilization_stats,
    utilization_vs_improvement,
)
from repro.trace.store import TraceStore

__all__ = ["full_report"]


def full_report(store: TraceStore, *, table3_client: str = "Duke") -> str:
    """Render every artefact applicable to ``store`` as one text document.

    Single-candidate campaigns (§2-style) get Figs. 1-5 and Tables I-II;
    stores with varying ``set_size`` (§4-style sweeps) additionally get
    Fig. 6 and Table III.  Empty stores yield a short notice.
    """
    if len(store) == 0:
        return "(empty measurement store - nothing to report)"

    sections: List[str] = [render_headline(headline_stats(store))]
    sections.append(render_fig1(improvement_histogram(store)))
    sections.append(render_fig2(per_client_histograms(store)))
    sections.append(render_table1(penalty_table(store)))
    sections.append(render_table2(top_relays_per_client(store)))
    sections.append(
        render_fig3([improvement_vs_throughput(store, label="all clients")])
    )
    sections.append(render_fig4(indirect_throughput_series(store)))
    sections.append(render_fig5(total_utilization_stats(store)))

    set_sizes = {r.set_size for r in store}
    if len(set_sizes) > 1:
        sections.append(render_fig6(random_set_curves(store)))
    clients = {r.client for r in store}
    if table3_client in clients:
        rows = utilization_vs_improvement(store, table3_client)
        if rows:
            sections.append(render_table3(rows, client=table3_client))

    return "\n\n".join(sections)
