"""Availability analysis over the failure study's records.

The overlay-resilience lineage (RON, MONET, "Examining Lower Latency Routing
with Overlay Networks") reports *availability* next to throughput, and this
module computes the comparable numbers for our resilient protocol from
:class:`~repro.trace.records.FailureRecord` rows:

* **availability** - the fraction of sessions that delivered the whole file
  (cleanly or via failover), and the byte-weighted complement
  *byte unavailability*;
* **time-to-recover** - the distribution of seconds between a stall being
  detected and the recovery action that answered it;
* **goodput under failure** - what throughput outage-affected sessions
  actually achieved, including the zeros of aborted sessions.

Every statistic is defined for empty inputs (NaN for undefined ratios,
never a ``ZeroDivisionError``) so partial or failure-free campaigns render
cleanly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.trace.records import FailureRecord, StripeRecord
from repro.util.units import mb

__all__ = [
    "AvailabilityStats",
    "availability_stats",
    "availability_by_mode",
    "recovery_times",
    "goodput_under_failure",
    "byte_unavailability",
    "duplicate_waste_fraction",
    "render_availability",
    "StripeDegradationStats",
    "stripe_degradation_stats",
    "stripe_degradation_by_k",
    "render_stripe_degradation",
]


def _quantile(values: Sequence[float], q: float) -> float:
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return math.nan
    return float(np.quantile(np.asarray(finite, dtype=np.float64), q))


def _mean(values: Sequence[float]) -> float:
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return math.nan
    return float(np.mean(np.asarray(finite, dtype=np.float64)))


@dataclass(frozen=True)
class AvailabilityStats:
    """Aggregate availability outcome of one record set.

    Attributes
    ----------
    n_sessions / n_completed / n_failed_over / n_aborted:
        Session counts by :class:`~repro.core.resilience.SessionOutcome`.
    availability:
        Fraction of sessions that delivered the whole file (``completed``
        or ``failed_over``); NaN with no sessions.
    recovery_rate:
        Of the sessions that took at least one recovery action (or
        aborted), the fraction that still delivered the file; NaN when no
        session ever needed recovery.
    mean_ttr / median_ttr / p95_ttr:
        Time-to-recover statistics over sessions with a finite
        time-to-recover (a stall answered by a failover/re-probe); NaN when
        none recovered.
    mean_goodput_under_failure:
        Mean goodput (delivered bytes / session duration) of
        outage-affected sessions, aborts included; NaN with none affected.
    byte_unavailability:
        ``1 - (delivered bytes / requested bytes)`` over all sessions - the
        byte-weighted cost of failures; NaN with no sessions.
    """

    n_sessions: int
    n_completed: int
    n_failed_over: int
    n_aborted: int
    availability: float
    recovery_rate: float
    mean_ttr: float
    median_ttr: float
    p95_ttr: float
    mean_goodput_under_failure: float
    byte_unavailability: float


def recovery_times(records: Sequence[FailureRecord]) -> List[float]:
    """Finite time-to-recover values, one per session that recovered."""
    return [r.time_to_recover for r in records if math.isfinite(r.time_to_recover)]


def goodput_under_failure(records: Sequence[FailureRecord]) -> List[float]:
    """Goodput (bytes/second) of each outage-affected session.

    Aborted sessions contribute their partial goodput (possibly 0.0); a
    degenerate zero-duration session contributes 0.0.
    """
    out: List[float] = []
    for r in records:
        if not r.outage_overlap:
            continue
        if r.selected_duration <= 0.0:
            out.append(0.0)
        else:
            out.append(r.bytes_received / r.selected_duration)
    return out


def byte_unavailability(records: Sequence) -> float:
    """``1 - delivered/requested`` over any records with byte accounting.

    Works on every record type that carries ``file_bytes`` and
    ``bytes_received`` (failure, stripe and chaos rows alike), so the SLO
    layer can evaluate the byte-weighted cost of failures without caring
    which study produced the artefact.  NaN when nothing was requested.
    """
    requested = sum(float(getattr(r, "file_bytes", 0.0)) for r in records)
    if requested <= 0.0:
        return math.nan
    delivered = sum(
        min(float(getattr(r, "bytes_received", 0.0)), float(getattr(r, "file_bytes", 0.0)))
        for r in records
    )
    return 1.0 - delivered / requested


def duplicate_waste_fraction(records: Sequence) -> float:
    """Duplicate bytes fetched per requested byte, over striping rows.

    Sums ``wasted_bytes`` across records that carry the field (stripe
    sessions; plain rows waste nothing by construction) against the total
    requested bytes of those same rows.  NaN when no row carries byte
    waste accounting - "no striping ran" is not the same claim as "zero
    waste", and the SLO evaluator treats NaN as a failed objective.
    """
    striped = [r for r in records if hasattr(r, "wasted_bytes")]
    requested = sum(float(getattr(r, "file_bytes", 0.0)) for r in striped)
    if requested <= 0.0:
        return math.nan
    wasted = sum(float(getattr(r, "wasted_bytes", 0.0)) for r in striped)
    return wasted / requested


def availability_stats(records: Sequence[FailureRecord]) -> AvailabilityStats:
    """Summarise availability over ``records`` (empty input is legal)."""
    n = len(records)
    n_completed = sum(1 for r in records if r.outcome == "completed")
    n_failed_over = sum(1 for r in records if r.recovered)
    n_aborted = sum(1 for r in records if r.aborted)
    needed_recovery = [r for r in records if r.recovered or r.aborted]

    availability = (n_completed + n_failed_over) / n if n else math.nan
    recovery_rate = (
        sum(1 for r in needed_recovery if not r.aborted) / len(needed_recovery)
        if needed_recovery
        else math.nan
    )
    ttrs = recovery_times(records)
    requested = sum(r.file_bytes for r in records)
    delivered = sum(min(r.bytes_received, r.file_bytes) for r in records)
    byte_unavailability = (
        1.0 - delivered / requested if requested > 0.0 else math.nan
    )
    return AvailabilityStats(
        n_sessions=n,
        n_completed=n_completed,
        n_failed_over=n_failed_over,
        n_aborted=n_aborted,
        availability=availability,
        recovery_rate=recovery_rate,
        mean_ttr=_mean(ttrs),
        median_ttr=_quantile(ttrs, 0.5),
        p95_ttr=_quantile(ttrs, 0.95),
        mean_goodput_under_failure=_mean(goodput_under_failure(records)),
        byte_unavailability=byte_unavailability,
    )


def availability_by_mode(
    records: Sequence[FailureRecord],
) -> Dict[str, AvailabilityStats]:
    """Per-injection-mode availability, keyed by ``failure_mode``.

    Modes appear in first-occurrence order, which for planned campaigns is
    the :data:`~repro.workloads.failures.FAILURE_MODES` cycle order.
    """
    by_mode: Dict[str, List[FailureRecord]] = {}
    for r in records:
        by_mode.setdefault(r.failure_mode, []).append(r)
    return {mode: availability_stats(rs) for mode, rs in by_mode.items()}


def _fmt(x: float, *, pct: bool = False) -> str:
    if not math.isfinite(x):
        return "n/a"
    return f"{100.0 * x:.1f}%" if pct else f"{x:.2f}"


def render_availability(records: Sequence[FailureRecord]) -> str:
    """Human-readable availability report (the `repro failures` output)."""
    lines: List[str] = []
    overall = availability_stats(records)
    lines.append("Availability study")
    lines.append("=" * 68)
    lines.append(
        f"sessions: {overall.n_sessions}  "
        f"(completed {overall.n_completed}, "
        f"failed over {overall.n_failed_over}, "
        f"aborted {overall.n_aborted})"
    )
    lines.append(
        f"availability: {_fmt(overall.availability, pct=True)}   "
        f"recovery rate: {_fmt(overall.recovery_rate, pct=True)}   "
        f"byte unavailability: {_fmt(overall.byte_unavailability, pct=True)}"
    )
    lines.append(
        f"time-to-recover (s): mean {_fmt(overall.mean_ttr)}  "
        f"median {_fmt(overall.median_ttr)}  p95 {_fmt(overall.p95_ttr)}"
    )
    lines.append(
        "goodput under failure (MB/s): "
        f"{_fmt(overall.mean_goodput_under_failure / mb(1))}"
    )
    lines.append("")
    lines.append(
        f"{'mode':<8} {'n':>5} {'avail':>8} {'recov':>8} "
        f"{'mean TTR':>9} {'aborted':>8}"
    )
    lines.append("-" * 68)
    for mode, stats in availability_by_mode(records).items():
        lines.append(
            f"{mode:<8} {stats.n_sessions:>5} "
            f"{_fmt(stats.availability, pct=True):>8} "
            f"{_fmt(stats.recovery_rate, pct=True):>8} "
            f"{_fmt(stats.mean_ttr):>9} "
            f"{stats.n_aborted:>8}"
        )
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# striped sessions: degradation instead of recovery
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class StripeDegradationStats:
    """Availability of striped sessions, which *degrade* rather than recover.

    A select-one session that loses its path stalls until failover answers
    the stall; a striped session that loses a path keeps delivering on the
    surviving lanes, so the comparable availability question is not
    "how fast did it recover" but "how much goodput did it retain".

    Attributes
    ----------
    n_sessions / n_clean / n_degraded / n_aborted:
        Session counts: ``clean`` completed with every path alive,
        ``degraded`` delivered the whole file despite losing at least one
        path, ``aborted`` gave up.
    availability:
        Fraction of sessions that delivered the whole file (clean or
        degraded); NaN with no sessions.
    mean_goodput_clean / mean_goodput_degraded:
        Mean whole-session goodput (bytes/second) of clean and degraded
        sessions; NaN when a group is empty.
    goodput_retained:
        ``mean_goodput_degraded / mean_goodput_clean`` - the fraction of
        healthy-stripe goodput a session keeps while riding out a path
        outage; NaN when either group is empty.
    byte_unavailability:
        ``1 - (delivered bytes / requested bytes)`` over all sessions.
    """

    n_sessions: int
    n_clean: int
    n_degraded: int
    n_aborted: int
    availability: float
    mean_goodput_clean: float
    mean_goodput_degraded: float
    goodput_retained: float
    byte_unavailability: float


def _stripe_goodput(r: StripeRecord) -> float:
    if r.selected_duration <= 0.0:
        return 0.0
    return r.bytes_received / r.selected_duration


def stripe_degradation_stats(
    records: Sequence[StripeRecord],
) -> StripeDegradationStats:
    """Summarise degradation behaviour over stripe rows (empty is legal).

    Select-mechanism rows are ignored so the function can be fed a whole
    mixed ``repro mhttp`` store unfiltered.
    """
    rows = [r for r in records if r.mechanism == "stripe"]
    clean = [r for r in rows if r.outcome == "completed" and r.n_path_failures == 0]
    degraded = [r for r in rows if r.degraded]
    n_aborted = sum(1 for r in rows if r.aborted)

    goodput_clean = _mean([_stripe_goodput(r) for r in clean])
    goodput_degraded = _mean([_stripe_goodput(r) for r in degraded])
    retained = (
        goodput_degraded / goodput_clean
        if math.isfinite(goodput_clean)
        and math.isfinite(goodput_degraded)
        and goodput_clean > 0.0
        else math.nan
    )
    requested = sum(r.file_bytes for r in rows)
    delivered = sum(min(r.bytes_received, r.file_bytes) for r in rows)
    return StripeDegradationStats(
        n_sessions=len(rows),
        n_clean=len(clean),
        n_degraded=len(degraded),
        n_aborted=n_aborted,
        availability=(len(clean) + len(degraded)) / len(rows) if rows else math.nan,
        mean_goodput_clean=goodput_clean,
        mean_goodput_degraded=goodput_degraded,
        goodput_retained=retained,
        byte_unavailability=(
            1.0 - delivered / requested if requested > 0.0 else math.nan
        ),
    )


def stripe_degradation_by_k(
    records: Sequence[StripeRecord],
) -> Dict[int, StripeDegradationStats]:
    """Per-stripe-width degradation stats, keyed by k in ascending order."""
    by_k: Dict[int, List[StripeRecord]] = {}
    for r in records:
        if r.mechanism == "stripe":
            by_k.setdefault(r.stripe_k, []).append(r)
    return {k: stripe_degradation_stats(by_k[k]) for k in sorted(by_k)}


def render_stripe_degradation(records: Sequence[StripeRecord]) -> str:
    """Human-readable degradation table for striped sessions."""
    lines: List[str] = []
    overall = stripe_degradation_stats(records)
    lines.append("Striped-session degradation")
    lines.append("=" * 68)
    lines.append(
        f"sessions: {overall.n_sessions}  "
        f"(clean {overall.n_clean}, degraded {overall.n_degraded}, "
        f"aborted {overall.n_aborted})"
    )
    lines.append(
        f"availability: {_fmt(overall.availability, pct=True)}   "
        f"byte unavailability: {_fmt(overall.byte_unavailability, pct=True)}"
    )
    lines.append(
        "goodput (MB/s): clean "
        f"{_fmt(overall.mean_goodput_clean / mb(1))}  degraded "
        f"{_fmt(overall.mean_goodput_degraded / mb(1))}  retained "
        f"{_fmt(overall.goodput_retained, pct=True)}"
    )
    lines.append("")
    lines.append(
        f"{'k':>3} {'n':>5} {'avail':>8} {'clean MB/s':>11} "
        f"{'degr MB/s':>10} {'retained':>9} {'aborted':>8}"
    )
    lines.append("-" * 68)
    for k, stats in stripe_degradation_by_k(records).items():
        lines.append(
            f"{k:>3} {stats.n_sessions:>5} "
            f"{_fmt(stats.availability, pct=True):>8} "
            f"{_fmt(stats.mean_goodput_clean / mb(1)):>11} "
            f"{_fmt(stats.mean_goodput_degraded / mb(1)):>10} "
            f"{_fmt(stats.goodput_retained, pct=True):>9} "
            f"{stats.n_aborted:>8}"
        )
    return "\n".join(lines)
