"""Text rendering of every reproduced table and figure.

Each ``render_*`` function turns analysis output into the aligned plain-text
artefact the benchmark harness prints, so a bench run visually regenerates
the paper's tables and figure series.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.analysis.improvement import ImprovementHistogram, ImprovementVsThroughput
from repro.analysis.metrics import HeadlineStats
from repro.analysis.penalties import PenaltyRow
from repro.analysis.random_set import RandomSetCurve
from repro.analysis.timeseries import IndirectThroughputSeries
from repro.analysis.utilization import (
    RelayUtilizationStats,
    UtilizationImprovementRow,
)
from repro.util.tables import render_histogram, render_kv, render_series, render_table

__all__ = [
    "render_fig1",
    "render_fig2",
    "render_table1",
    "render_table2",
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_table3",
    "render_headline",
]


def render_fig1(hist: ImprovementHistogram) -> str:
    """Fig. 1: the aggregate improvement histogram with summary stats."""
    head = render_kv(
        [
            ("data points (indirect selected)", hist.n_points),
            ("mean improvement (%)", hist.mean),
            ("median improvement (%)", hist.median),
            ("fraction negative", hist.fraction_negative),
            ("fraction in [0, 100]%", hist.fraction_0_to_100),
        ],
        title=f"Figure 1 - improvement histogram ({hist.label})",
    )
    body = render_histogram(hist.percentages, hist.edges, label_fmt=".0f")
    return head + "\n" + body


def render_fig2(hists: Dict[str, ImprovementHistogram]) -> str:
    """Fig. 2: per-client improvement summaries (one row per client)."""
    rows = []
    for name in sorted(hists):
        h = hists[name]
        peak = "-"
        if h.n_points > 0 and np.any(h.percentages > 0):
            lo, hi = h.peak_bin()
            peak = f"[{lo:.0f},{hi:.0f})"
        rows.append(
            (name, h.n_points, h.mean, h.median, 100.0 * h.fraction_0_to_100, peak)
        )
    return render_table(
        ["client", "points", "mean %", "median %", "% in [0,100]", "peak bin"],
        rows,
        title="Figure 2 - per-client improvement profiles",
    )


def render_table1(rows: List[PenaltyRow]) -> str:
    """Table I: penalty statistics under the paper's two filters."""
    return render_table(
        ["population", "points", "penalty pts %", "avg %", "st.dev %", "max %"],
        [
            (
                r.label,
                r.n_points,
                r.penalty_points_percent,
                r.avg_penalty,
                r.std_penalty,
                r.max_penalty,
            )
            for r in rows
        ],
        title="Table I - penalty statistics",
    )


def render_table2(top: Dict[str, list]) -> str:
    """Table II: each client's top-3 relays with utilisations."""
    rows = []
    for client in sorted(top):
        cells = [
            f"{relay} ({100.0 * util:.0f}%)" for relay, util in top[client]
        ]
        cells += ["-"] * (3 - len(cells))
        rows.append((client, cells[0], cells[1], cells[2]))
    return render_table(
        ["client", "first", "second", "third"],
        rows,
        title="Table II - top three intermediate nodes per client",
    )


def render_fig3(panels: List[ImprovementVsThroughput], *, n_bins: int = 6) -> str:
    """Fig. 3: binned improvement vs direct throughput with trend slopes."""
    parts = ["Figure 3 - improvement vs direct-path throughput"]
    for panel in panels:
        centres, means = panel.binned_means(n_bins)
        trend = "downward" if panel.is_downward else "non-downward"
        parts.append(
            render_series(
                centres,
                means,
                x_name="direct Mbps",
                y_name="mean improvement %",
                title=(
                    f"[{panel.label}] n={panel.direct_mbps.size} "
                    f"slope={panel.slope:.1f} %/Mbps ({trend})"
                ),
            )
        )
    return "\n".join(parts)


def render_fig4(series: Dict[str, IndirectThroughputSeries]) -> str:
    """Fig. 4: indirect throughput over time - trend-test summary per client."""
    rows = []
    for name in sorted(series):
        s = series[name]
        rows.append(
            (
                name,
                s.n_points,
                float(np.mean(s.throughput_mbps)) if s.n_points else float("nan"),
                float(np.std(s.throughput_mbps)) if s.n_points else float("nan"),
                s.trend.trend,
                s.trend.p_value,
                s.jump_count,
            )
        )
    return render_table(
        ["client", "points", "mean Mbps", "std Mbps", "trend", "p-value", "jumps"],
        rows,
        title="Figure 4 - indirect-path throughput over time (Mann-Kendall)",
        float_fmt=".2f",
    )


def render_fig5(stats: Dict[str, RelayUtilizationStats], *, relays: Optional[List[str]] = None) -> str:
    """Fig. 5: per-relay utilisation average / stdev / RMS (in percent)."""
    names = relays if relays is not None else sorted(stats)
    rows = []
    for name in names:
        s = stats[name]
        rows.append(
            (name, s.n_clients, 100.0 * s.average, 100.0 * s.stdev, 100.0 * s.rms)
        )
    return render_table(
        ["relay", "clients", "average %", "stdev %", "RMS %"],
        rows,
        title="Figure 5 - intermediate node utilisation statistics",
    )


def render_fig6(curves: Dict[str, RandomSetCurve]) -> str:
    """Fig. 6: average improvement vs random-set size, one column per client."""
    names = sorted(curves)
    all_ks = sorted({int(k) for c in curves.values() for k in c.set_sizes})
    rows = []
    for k in all_ks:
        row: list = [k]
        for name in names:
            try:
                row.append(curves[name].value_at(k))
            except KeyError:
                row.append(float("nan"))
        rows.append(tuple(row))
    return render_table(
        ["set size k"] + [f"{n} (avg %)" for n in names],
        rows,
        title="Figure 6 - average improvement vs random set size",
    )


def render_table3(rows: List[UtilizationImprovementRow], *, client: str) -> str:
    """Table III: utilisation vs improvement for one client's relays."""
    return render_table(
        ["node", "utilization %", "improvement %"],
        [(r.relay, r.utilization_percent, r.mean_improvement_percent) for r in rows],
        title=f"Table III - utilisations and improvements ({client} as client)",
    )


def render_headline(stats: HeadlineStats) -> str:
    """The §6 headline rates."""
    return render_kv(
        [
            ("transfers", stats.n_transfers),
            ("indirect utilization", stats.utilization),
            ("P(positive | indirect)", stats.positive_given_indirect),
            ("effective benefit rate", stats.effective_benefit_rate),
            ("mean improvement | indirect (%)", stats.mean_improvement_when_indirect),
            ("median improvement | indirect (%)", stats.median_improvement_when_indirect),
        ],
        title="Headline rates (paper section 6)",
    )
