"""Scale study analysis: population-level aggregates per wave.

Turns the :class:`~repro.trace.records.ScaleRecord` rows of a
``repro scale`` campaign into the study's headline numbers:

* the **indirect share** - what fraction of a 100k-client population a
  relay path won (the paper's indirect-routing opportunity, measured at
  population scale instead of client-pair scale);
* per-wave **throughput and latency percentiles**, exact by construction
  (the wave computes them from the full per-client arrays);
* the **cohort gap** - mean per-client throughput of relay winners vs.
  direct winners.

All statistics are defined for empty inputs (NaN or 0, never a division
error), matching the repo's other analysis modules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.trace.records import ScaleRecord
from repro.util.units import mb

__all__ = ["ScaleTotals", "scale_totals", "render_scale"]


@dataclass(frozen=True)
class ScaleTotals:
    """Whole-campaign aggregates over every wave.

    Attributes
    ----------
    n_waves / n_clients / n_completed:
        Wave count and client totals across the campaign.
    indirect_fraction:
        Relay-winner share of the whole population (NaN when empty).
    mean_throughput:
        Client-weighted mean per-client throughput, bytes/second.
    worst_latency_p99 / worst_latency_max:
        The slowest wave's tail (NaN when empty).
    """

    n_waves: int
    n_clients: int
    n_completed: int
    indirect_fraction: float
    mean_throughput: float
    worst_latency_p99: float
    worst_latency_max: float


def scale_totals(records: Sequence[ScaleRecord]) -> ScaleTotals:
    """Campaign totals over every wave (sorted input not required)."""
    n_clients = sum(r.n_clients for r in records)
    n_indirect = sum(r.n_indirect for r in records)
    weighted = sum(r.mean_throughput * r.n_clients for r in records)
    return ScaleTotals(
        n_waves=len(records),
        n_clients=n_clients,
        n_completed=sum(r.n_completed for r in records),
        indirect_fraction=(n_indirect / n_clients) if n_clients else math.nan,
        mean_throughput=(weighted / n_clients) if n_clients else math.nan,
        worst_latency_p99=max(
            (r.latency_p99 for r in records), default=math.nan
        ),
        worst_latency_max=max(
            (r.latency_max for r in records), default=math.nan
        ),
    )


def _fmt(x: float, *, pct: bool = False) -> str:
    if not math.isfinite(x):
        return "n/a"
    return f"{100.0 * x:.1f}%" if pct else f"{x:.2f}"


def render_scale(records: Sequence[ScaleRecord]) -> str:
    """Human-readable study report (the ``repro scale`` output)."""
    rows = sorted(records, key=lambda r: r.sort_key)
    lines: List[str] = []
    lines.append("scale study: population waves racing direct vs relay")
    lines.append("=" * 78)
    lines.append(f"waves: {len(rows)}")
    lines.append("")
    lines.append(
        f"{'wave':<8} {'clients':>8} {'indir':>6} "
        f"{'thr p50':>8} {'thr p99':>8} "
        f"{'lat p50':>8} {'lat p99':>8} {'lat max':>8} {'span s':>8}"
    )
    lines.append("-" * 78)
    for r in rows:
        lines.append(
            f"{r.client:<8} {r.n_clients:>8} "
            f"{_fmt(r.indirect_fraction, pct=True):>6} "
            f"{_fmt(r.throughput_p50 / mb(1)):>8} "
            f"{_fmt(r.throughput_p99 / mb(1)):>8} "
            f"{_fmt(r.latency_p50):>8} {_fmt(r.latency_p99):>8} "
            f"{_fmt(r.latency_max):>8} {_fmt(r.makespan):>8}"
        )
    totals = scale_totals(rows)
    lines.append("")
    lines.append(
        f"population: {totals.n_completed}/{totals.n_clients} clients "
        f"completed across {totals.n_waves} wave(s); "
        f"indirect share {_fmt(totals.indirect_fraction, pct=True)}"
    )
    lines.append(
        f"mean per-client throughput: "
        f"{_fmt(totals.mean_throughput / mb(1))} MB/s; "
        f"worst wave tail: p99 {_fmt(totals.worst_latency_p99)} s, "
        f"max {_fmt(totals.worst_latency_max)} s"
    )
    lines.append("(throughput columns in MB/s, latencies in seconds)")
    return "\n".join(lines)
