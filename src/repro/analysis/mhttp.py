"""mHTTP study analysis: select-one vs stripe-k, head to head.

Aggregates :class:`~repro.trace.records.StripeRecord` rows from the
``repro mhttp`` campaign into the comparison the study exists for:

* **improvement** over the direct control (the paper's headline metric,
  computed from whole-session throughput so select-one's probe phase and
  the stripe's scheduling overhead both count);
* **completion-time tail** (p50/p95/p99) per mechanism, the number that
  exposes select-one's failover gap under the PR 4 failure model;
* **waste** - the stripe's duplicate/discarded bytes per k, the price of
  straggler re-issue and dead-lane teardown.

Every statistic is defined for empty inputs (NaN, never a division
error), matching the repo's other analysis modules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.availability import render_stripe_degradation
from repro.trace.records import StripeRecord
from repro.util.units import mb

__all__ = [
    "MhttpCellStats",
    "mhttp_cells",
    "stripe_p99_advantage",
    "render_mhttp",
]


def _quantile(values: Sequence[float], q: float) -> float:
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return math.nan
    return float(np.quantile(np.asarray(finite, dtype=np.float64), q))


def _mean(values: Sequence[float]) -> float:
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return math.nan
    return float(np.mean(np.asarray(finite, dtype=np.float64)))


@dataclass(frozen=True)
class MhttpCellStats:
    """One cell of the study grid: (failure mode, k, mechanism).

    Attributes
    ----------
    mechanism / k / failure_mode:
        The cell coordinates (k counts paths including direct).
    n / n_delivered / n_aborted:
        Session counts; ``n_delivered`` got the whole file.
    mean_improvement:
        Mean of the per-row whole-session improvement over the direct
        control, ``(end_to_end - direct) / direct``; NaN with no rows.
    p50_duration / p95_duration / p99_duration:
        Completion-time quantiles in seconds over delivered sessions
        (aborted sessions have no completion time and are excluded here -
        they show up in ``n_aborted`` and availability instead).
    mean_wasted_bytes / mean_wasted_fraction:
        Stripe overhead (identically 0 for select cells).
    mean_reissues:
        Straggler/death re-issues per session (0 for select cells).
    """

    mechanism: str
    k: int
    failure_mode: str
    n: int
    n_delivered: int
    n_aborted: int
    mean_improvement: float
    p50_duration: float
    p95_duration: float
    p99_duration: float
    mean_wasted_bytes: float
    mean_wasted_fraction: float
    mean_reissues: float


def _cell(rows: Sequence[StripeRecord]) -> MhttpCellStats:
    head = rows[0]
    delivered = [r for r in rows if not r.aborted]
    durations = [r.selected_duration for r in delivered]
    improvements = [
        (r.end_to_end_throughput - r.direct_throughput) / r.direct_throughput
        for r in rows
        if r.direct_throughput > 0.0
    ]
    return MhttpCellStats(
        mechanism=head.mechanism,
        k=head.stripe_k,
        failure_mode=head.failure_mode,
        n=len(rows),
        n_delivered=len(delivered),
        n_aborted=sum(1 for r in rows if r.aborted),
        mean_improvement=_mean(improvements),
        p50_duration=_quantile(durations, 0.5),
        p95_duration=_quantile(durations, 0.95),
        p99_duration=_quantile(durations, 0.99),
        mean_wasted_bytes=_mean([r.wasted_bytes for r in rows]),
        mean_wasted_fraction=_mean([r.wasted_fraction for r in rows]),
        mean_reissues=_mean([float(r.n_reissues) for r in rows]),
    )


def mhttp_cells(
    records: Sequence[StripeRecord],
) -> Dict[Tuple[str, int, str], MhttpCellStats]:
    """The study grid, keyed by ``(failure_mode, k, mechanism)``.

    Keys are sorted (mode, then k, then mechanism) so renders and tests
    iterate deterministically.
    """
    cells: Dict[Tuple[str, int, str], List[StripeRecord]] = {}
    for r in records:
        cells.setdefault((r.failure_mode, r.stripe_k, r.mechanism), []).append(r)
    return {key: _cell(cells[key]) for key in sorted(cells)}


def stripe_p99_advantage(
    records: Sequence[StripeRecord],
) -> Dict[Tuple[str, int], float]:
    """Select-one p99 minus stripe p99, seconds, per (failure mode, k).

    Positive means the stripe's completion tail beats select-one's - the
    study's acceptance criterion under the ``node`` failure mode.  NaN
    when either mechanism's cell is missing or empty.
    """
    cells = mhttp_cells(records)
    out: Dict[Tuple[str, int], float] = {}
    pairs = sorted({(mode, k) for mode, k, _mech in cells})
    for mode, k in pairs:
        select = cells.get((mode, k, "select"))
        stripe = cells.get((mode, k, "stripe"))
        if select is None or stripe is None:
            out[(mode, k)] = math.nan
        else:
            out[(mode, k)] = select.p99_duration - stripe.p99_duration
    return out


def _fmt(x: float, *, pct: bool = False) -> str:
    if not math.isfinite(x):
        return "n/a"
    return f"{100.0 * x:+.1f}%" if pct else f"{x:.2f}"


def render_mhttp(records: Sequence[StripeRecord]) -> str:
    """Human-readable study report (the `repro mhttp` output)."""
    lines: List[str] = []
    lines.append("mHTTP striping study: select-one vs stripe-k")
    lines.append("=" * 76)
    lines.append(f"rows: {len(records)}")
    lines.append("")
    lines.append(
        f"{'mode':<6} {'k':>2} {'mech':<7} {'n':>4} {'improv':>8} "
        f"{'p50 s':>7} {'p95 s':>7} {'p99 s':>7} "
        f"{'waste MB':>9} {'waste %':>8} {'abort':>6}"
    )
    lines.append("-" * 76)
    for stats in mhttp_cells(records).values():
        lines.append(
            f"{stats.failure_mode:<6} {stats.k:>2} {stats.mechanism:<7} "
            f"{stats.n:>4} {_fmt(stats.mean_improvement, pct=True):>8} "
            f"{_fmt(stats.p50_duration):>7} {_fmt(stats.p95_duration):>7} "
            f"{_fmt(stats.p99_duration):>7} "
            f"{_fmt(stats.mean_wasted_bytes / mb(1)):>9} "
            f"{_fmt(stats.mean_wasted_fraction, pct=True):>8} "
            f"{stats.n_aborted:>6}"
        )
    lines.append("")
    lines.append("stripe p99 advantage over select-one (positive = stripe faster):")
    for (mode, k), delta in stripe_p99_advantage(records).items():
        lines.append(f"  mode={mode:<6} k={k}: {_fmt(delta)} s")
    lines.append("")
    lines.append(render_stripe_degradation(records))
    return "\n".join(lines)
