"""Relay utilisation analyses: Tables II & III and Fig. 5.

Two utilisation notions appear in the paper:

* **per-client utilisation** (Table II): among one client's transfers that
  offered relay R, the fraction in which the indirect path (via R) was
  chosen;
* **total utilisation** (Fig. 5): the same ratio pooled over all clients;
* the §4 variant (Table III): among transfers whose *random set contained*
  relay R, the fraction in which R was the relay actually used - plus the
  average improvement achieved when it was used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.trace.store import TraceStore
from repro.util.stats import rms, summarize

__all__ = [
    "client_relay_utilization",
    "top_relays_per_client",
    "RelayUtilizationStats",
    "total_utilization_stats",
    "UtilizationImprovementRow",
    "utilization_vs_improvement",
]


def client_relay_utilization(store: TraceStore) -> Dict[Tuple[str, str], float]:
    """Utilisation of each (client, relay) pair.

    A transfer counts toward (client, R) when R was in the offered set; it
    counts as a win when R carried the transfer.
    """
    offered: Dict[Tuple[str, str], int] = {}
    wins: Dict[Tuple[str, str], int] = {}
    for r in store:
        for relay in r.offered:
            key = (r.client, relay)
            offered[key] = offered.get(key, 0) + 1
            if r.selected_via == relay:
                wins[key] = wins.get(key, 0) + 1
    return {key: wins.get(key, 0) / n for key, n in offered.items()}


def top_relays_per_client(
    store: TraceStore,
    *,
    top: int = 3,
    min_offers: int = 1,
) -> Dict[str, List[Tuple[str, float]]]:
    """Table II: each client's ``top`` relays by per-client utilisation.

    Returns ``client -> [(relay, utilisation), ...]`` sorted descending.
    Pairs offered fewer than ``min_offers`` times are ignored.
    """
    offers: Dict[Tuple[str, str], int] = {}
    for r in store:
        for relay in r.offered:
            offers[(r.client, relay)] = offers.get((r.client, relay), 0) + 1
    util = client_relay_utilization(store)
    by_client: Dict[str, List[Tuple[str, float]]] = {}
    for (client, relay), u in util.items():
        if offers[(client, relay)] >= min_offers:
            by_client.setdefault(client, []).append((relay, u))
    return {
        client: sorted(items, key=lambda kv: (-kv[1], kv[0]))[:top]
        for client, items in by_client.items()
    }


@dataclass(frozen=True)
class RelayUtilizationStats:
    """Fig. 5 entries for one relay: moments of its per-client utilisations."""

    relay: str
    n_clients: int
    average: float
    stdev: float
    rms: float


def total_utilization_stats(store: TraceStore) -> Dict[str, RelayUtilizationStats]:
    """Fig. 5: per-relay average/stdev/RMS over per-client utilisations."""
    util = client_relay_utilization(store)
    per_relay: Dict[str, List[float]] = {}
    for (client, relay), u in util.items():
        per_relay.setdefault(relay, []).append(u)
    out: Dict[str, RelayUtilizationStats] = {}
    for relay, values in per_relay.items():
        s = summarize(values)
        out[relay] = RelayUtilizationStats(
            relay=relay,
            n_clients=s.count,
            average=s.mean,
            stdev=s.std,
            rms=rms(values),
        )
    return out


def overall_average_utilization(store: TraceStore) -> float:
    """The paper's "average utilisation across all intermediate nodes" (~45%)."""
    stats = total_utilization_stats(store)
    if not stats:
        return float("nan")
    return float(np.mean([s.average for s in stats.values()]))


@dataclass(frozen=True)
class UtilizationImprovementRow:
    """One Table III row: a relay's utilisation and realised improvement."""

    relay: str
    times_offered: int
    times_chosen: int
    utilization_percent: float
    mean_improvement_percent: float


def utilization_vs_improvement(
    store: TraceStore,
    client: str,
    *,
    include_zero_utilization: bool = False,
) -> List[UtilizationImprovementRow]:
    """Table III for one client, sorted by utilisation (descending).

    By default relays never chosen are dropped, matching the paper ("only
    those intermediate nodes with non-zero utilizations are shown").
    """
    sub = store.filter(client=client)
    offered: Dict[str, int] = {}
    chosen: Dict[str, int] = {}
    improvements: Dict[str, List[float]] = {}
    for r in sub:
        for relay in r.offered:
            offered[relay] = offered.get(relay, 0) + 1
        if r.selected_via is not None:
            chosen[r.selected_via] = chosen.get(r.selected_via, 0) + 1
            improvements.setdefault(r.selected_via, []).append(r.improvement_percent)
    rows: List[UtilizationImprovementRow] = []
    for relay, n_off in offered.items():
        n_cho = chosen.get(relay, 0)
        if n_cho == 0 and not include_zero_utilization:
            continue
        imps = improvements.get(relay, [])
        rows.append(
            UtilizationImprovementRow(
                relay=relay,
                times_offered=n_off,
                times_chosen=n_cho,
                utilization_percent=100.0 * n_cho / n_off,
                mean_improvement_percent=(
                    float(np.mean(imps)) if imps else float("nan")
                ),
            )
        )
    rows.sort(key=lambda row: (-row.utilization_percent, row.relay))
    return rows


def utilization_improvement_correlation(
    rows: List[UtilizationImprovementRow],
) -> float:
    """Pearson correlation between utilisation and improvement across relays.

    The paper observes this is positive but "not perfect"; NaN with fewer
    than two rows or degenerate variance.
    """
    if len(rows) < 2:
        return float("nan")
    u = np.array([r.utilization_percent for r in rows])
    i = np.array([r.mean_improvement_percent for r in rows])
    mask = ~np.isnan(i)
    if mask.sum() < 2 or np.std(u[mask]) == 0.0 or np.std(i[mask]) == 0.0:
        return float("nan")
    return float(np.corrcoef(u[mask], i[mask])[0, 1])


__all__.extend(["overall_average_utilization", "utilization_improvement_correlation"])
