"""Analysis layer: every paper table and figure computed from trace stores."""

from repro.analysis.availability import (
    AvailabilityStats,
    StripeDegradationStats,
    availability_by_mode,
    availability_stats,
    goodput_under_failure,
    recovery_times,
    render_availability,
    render_stripe_degradation,
    stripe_degradation_by_k,
    stripe_degradation_stats,
)
from repro.analysis.classify import (
    DEFAULT_CV_THRESHOLD,
    MeasuredClientProfile,
    classify_clients,
)
from repro.analysis.improvement import (
    DEFAULT_BIN_EDGES,
    ImprovementHistogram,
    ImprovementVsThroughput,
    improvement_histogram,
    improvement_vs_throughput,
    per_client_histograms,
)
from repro.analysis.metrics import (
    HeadlineStats,
    all_improvements,
    headline_stats,
    improvements_when_indirect,
    indirect_utilization,
    mean_improvement_by_site,
    positive_given_indirect,
)
from repro.analysis.mhttp import (
    MhttpCellStats,
    mhttp_cells,
    render_mhttp,
    stripe_p99_advantage,
)
from repro.analysis.penalties import PenaltyRow, penalty_table
from repro.analysis.prediction import PredictionQuality, prediction_quality
from repro.analysis.scale import (
    ScaleTotals,
    render_scale,
    scale_totals,
)
from repro.analysis.random_set import (
    RandomSetCurve,
    random_set_curves,
    saturation_point,
)
from repro.analysis.report import (
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_headline,
    render_table1,
    render_table2,
    render_table3,
)
from repro.analysis.timeseries import (
    IndirectThroughputSeries,
    indirect_throughput_series,
)
from repro.analysis.summary import full_report
from repro.analysis.variability import VariabilityComparison, variability_reduction
from repro.analysis.utilization import (
    RelayUtilizationStats,
    UtilizationImprovementRow,
    client_relay_utilization,
    overall_average_utilization,
    top_relays_per_client,
    total_utilization_stats,
    utilization_improvement_correlation,
    utilization_vs_improvement,
)

__all__ = [
    "AvailabilityStats",
    "availability_stats",
    "availability_by_mode",
    "recovery_times",
    "goodput_under_failure",
    "render_availability",
    "StripeDegradationStats",
    "stripe_degradation_stats",
    "stripe_degradation_by_k",
    "render_stripe_degradation",
    "MhttpCellStats",
    "mhttp_cells",
    "stripe_p99_advantage",
    "render_mhttp",
    "ScaleTotals",
    "scale_totals",
    "render_scale",
    "improvements_when_indirect",
    "all_improvements",
    "indirect_utilization",
    "positive_given_indirect",
    "headline_stats",
    "HeadlineStats",
    "mean_improvement_by_site",
    "classify_clients",
    "MeasuredClientProfile",
    "DEFAULT_CV_THRESHOLD",
    "penalty_table",
    "PenaltyRow",
    "prediction_quality",
    "PredictionQuality",
    "variability_reduction",
    "full_report",
    "VariabilityComparison",
    "improvement_histogram",
    "per_client_histograms",
    "improvement_vs_throughput",
    "ImprovementHistogram",
    "ImprovementVsThroughput",
    "DEFAULT_BIN_EDGES",
    "indirect_throughput_series",
    "IndirectThroughputSeries",
    "client_relay_utilization",
    "top_relays_per_client",
    "total_utilization_stats",
    "overall_average_utilization",
    "RelayUtilizationStats",
    "utilization_vs_improvement",
    "utilization_improvement_correlation",
    "UtilizationImprovementRow",
    "random_set_curves",
    "saturation_point",
    "RandomSetCurve",
    "render_fig1",
    "render_fig2",
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_headline",
]
