"""Penalty statistics: the paper's Table I.

Starting from all indirect-selected transfers ("data points" in Fig. 1), the
paper filters the population twice and reports, for each population, the
fraction of points that were penalties and the penalty magnitude statistics:

1. **All** clients;
2. **Med/Low throughput**: drop clients measured as High-throughput;
3. **Low variability**: additionally drop Med/Low clients whose direct
   throughput is highly variable.

The monotone improvement across rows - fewer and smaller penalties after
each filter - is the shape this module reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.classify import DEFAULT_CV_THRESHOLD, classify_clients
from repro.trace.store import TraceStore

__all__ = ["PenaltyRow", "penalty_table"]


@dataclass(frozen=True)
class PenaltyRow:
    """One row of Table I."""

    label: str
    n_points: int
    penalty_fraction: float
    avg_penalty: float
    std_penalty: float
    max_penalty: float

    @property
    def penalty_points_percent(self) -> float:
        """Penalty points as a percentage of the population's data points."""
        return 100.0 * self.penalty_fraction


def _row(label: str, store: TraceStore) -> PenaltyRow:
    indirect = store.filter(used_indirect=True)
    n = len(indirect)
    penalties = np.asarray(
        [r.penalty_percent for r in indirect if r.is_penalty], dtype=np.float64
    )
    return PenaltyRow(
        label=label,
        n_points=n,
        penalty_fraction=(penalties.size / n) if n else float("nan"),
        avg_penalty=float(np.mean(penalties)) if penalties.size else 0.0,
        std_penalty=float(np.std(penalties)) if penalties.size else 0.0,
        max_penalty=float(np.max(penalties)) if penalties.size else 0.0,
    )


def penalty_table(
    store: TraceStore,
    *,
    cv_threshold: float = DEFAULT_CV_THRESHOLD,
) -> List[PenaltyRow]:
    """Compute the three Table I rows from a §2-style campaign."""
    profiles = classify_clients(store, cv_threshold=cv_threshold)

    med_low_clients = {c for c, p in profiles.items() if p.is_med_or_low}
    stable_clients = {
        c for c, p in profiles.items() if p.is_med_or_low and not p.high_variability
    }

    return [
        _row("All", store),
        _row("Med/Low Throughput", store.where(lambda r: r.client in med_low_clients)),
        _row("Low Variability", store.where(lambda r: r.client in stable_clients)),
    ]
