"""Chaos study analysis: mechanism resilience under injected faults.

Aggregates :class:`~repro.trace.records.ChaosRecord` rows from the
``repro chaos`` campaign into the cross-mechanism resilience comparison:

* **availability** - the fraction of sessions that delivered the whole
  object (aborted or partial sessions count against it);
* **MTTR** - mean/median seconds from the first stall (or dead stripe
  lane) to the recovery action that answered it, over sessions that had
  anything to recover from;
* **goodput retained** - a cell's mean whole-session throughput relative
  to the same mechanism's no-fault baseline, the "how much of your
  healthy speed survives this fault" number;
* **completion tail** (p99 duration) per cell, where select-one's
  wait-out-the-outage strategy shows up.

Every statistic is defined for empty inputs (NaN, never a division
error), matching the repo's other analysis modules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.trace.records import ChaosRecord

__all__ = [
    "ChaosCellStats",
    "chaos_cells",
    "availability_by_mechanism",
    "mechanism_separation",
    "render_chaos",
]


def _quantile(values: Sequence[float], q: float) -> float:
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return math.nan
    return float(np.quantile(np.asarray(finite, dtype=np.float64), q))


def _mean(values: Sequence[float]) -> float:
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return math.nan
    return float(np.mean(np.asarray(finite, dtype=np.float64)))


@dataclass(frozen=True)
class ChaosCellStats:
    """One cell of the resilience grid: (fault family, intensity, mechanism).

    Attributes
    ----------
    fault_family / intensity / mechanism:
        The cell coordinates (``"none"`` rows are the healthy baseline).
    n / n_available / n_aborted:
        Session counts; ``n_available`` delivered the whole object.
    availability:
        ``n_available / n``; NaN with no rows.
    mean_ttr / p50_ttr:
        Mean/median time-to-recover in seconds over sessions with a
        finite recovery time (nothing stalled -> excluded, not zero).
    n_recovered:
        Sessions contributing to the MTTR statistics.
    goodput_retained:
        Cell mean whole-session throughput divided by the same
        mechanism's ``none``-cell mean; NaN without a baseline.
    p50_duration / p99_duration:
        Completion-time quantiles in seconds over sessions that finished
        (aborted sessions have no completion time).
    mean_recovery_actions:
        Failover switches plus stripe paths declared dead, per session.
    mean_downtime:
        Mean seconds of fault-window overlap per session lifetime.
    """

    fault_family: str
    intensity: str
    mechanism: str
    n: int
    n_available: int
    n_aborted: int
    availability: float
    mean_ttr: float
    p50_ttr: float
    n_recovered: int
    goodput_retained: float
    p50_duration: float
    p99_duration: float
    mean_recovery_actions: float
    mean_downtime: float


def _cell(rows: Sequence[ChaosRecord], baseline_goodput: float) -> ChaosCellStats:
    head = rows[0]
    finished = [r for r in rows if not r.aborted]
    ttrs = [r.time_to_recover for r in rows if math.isfinite(r.time_to_recover)]
    goodput = _mean([r.end_to_end_throughput for r in rows])
    retained = (
        goodput / baseline_goodput
        if math.isfinite(goodput) and baseline_goodput > 0.0
        else math.nan
    )
    return ChaosCellStats(
        fault_family=head.fault_family,
        intensity=head.intensity,
        mechanism=head.mechanism,
        n=len(rows),
        n_available=sum(1 for r in rows if r.available),
        n_aborted=sum(1 for r in rows if r.aborted),
        availability=(
            sum(1 for r in rows if r.available) / len(rows) if rows else math.nan
        ),
        mean_ttr=_mean(ttrs),
        p50_ttr=_quantile(ttrs, 0.5),
        n_recovered=len(ttrs),
        goodput_retained=retained,
        p50_duration=_quantile([r.selected_duration for r in finished], 0.5),
        p99_duration=_quantile([r.selected_duration for r in finished], 0.99),
        mean_recovery_actions=_mean(
            [float(r.n_failovers + r.n_path_failures) for r in rows]
        ),
        mean_downtime=_mean([r.fault_downtime for r in rows]),
    )


def chaos_cells(
    records: Sequence[ChaosRecord],
) -> Dict[Tuple[str, str, str], ChaosCellStats]:
    """The resilience grid, keyed by ``(fault_family, intensity, mechanism)``.

    ``goodput_retained`` is computed against the same mechanism's
    ``none``-family cell, so cells are comparable across mechanisms with
    different healthy speeds.  Keys are sorted for deterministic renders.
    """
    groups: Dict[Tuple[str, str, str], List[ChaosRecord]] = {}
    for r in records:
        groups.setdefault((r.fault_family, r.intensity, r.mechanism), []).append(r)
    baselines: Dict[str, float] = {}
    for (family, _intensity, mechanism), rows in groups.items():
        if family == "none":
            baselines[mechanism] = _mean([r.end_to_end_throughput for r in rows])
    return {
        key: _cell(groups[key], baselines.get(key[2], math.nan))
        for key in sorted(groups)
    }


def availability_by_mechanism(
    records: Sequence[ChaosRecord],
) -> Dict[Tuple[str, str], Dict[str, float]]:
    """Availability per (family, intensity), split by mechanism.

    The study's acceptance view: under at least the gray and correlated
    families, select / failover / stripe must separate measurably.
    """
    cells = chaos_cells(records)
    out: Dict[Tuple[str, str], Dict[str, float]] = {}
    for (family, intensity, mechanism), stats in cells.items():
        out.setdefault((family, intensity), {})[mechanism] = stats.availability
    return out


def mechanism_separation(
    records: Sequence[ChaosRecord],
) -> Dict[Tuple[str, str], Tuple[float, float]]:
    """Per (family, intensity): spread across mechanisms, excluding ``none``.

    Returns ``(availability spread, p99 spread)`` where each spread is the
    max-minus-min of that statistic across the mechanism arms - the
    study's acceptance signal that select / failover / stripe behave
    measurably differently under the fault.  The select arm recovers by
    waiting (it never records a recovery action), so MTTR itself cannot
    separate all three arms; the completion tail is where waiting shows.
    """
    cells = chaos_cells(records)
    out: Dict[Tuple[str, str], Tuple[float, float]] = {}
    coords = sorted({(f, i) for f, i, _m in cells if f != "none"})
    for family, intensity in coords:
        arms = [
            stats
            for (f, i, _m), stats in cells.items()
            if (f, i) == (family, intensity)
        ]
        avails = [s.availability for s in arms if math.isfinite(s.availability)]
        p99s = [s.p99_duration for s in arms if math.isfinite(s.p99_duration)]
        out[(family, intensity)] = (
            max(avails) - min(avails) if avails else math.nan,
            max(p99s) - min(p99s) if p99s else math.nan,
        )
    return out


def _fmt(x: float, *, pct: bool = False) -> str:
    if not math.isfinite(x):
        return "n/a"
    return f"{100.0 * x:.1f}%" if pct else f"{x:.2f}"


def render_chaos(records: Sequence[ChaosRecord]) -> str:
    """Human-readable study report (the ``repro chaos`` output)."""
    lines: List[str] = []
    lines.append("chaos resilience study: select vs failover vs stripe-k")
    lines.append("=" * 78)
    lines.append(f"rows: {len(records)}")
    lines.append("")
    lines.append(
        f"{'family':<11} {'intens':<6} {'mech':<8} {'n':>4} {'avail':>6} "
        f"{'mttr s':>7} {'goodput':>8} {'p50 s':>8} {'p99 s':>8} {'abort':>6}"
    )
    lines.append("-" * 78)
    for stats in chaos_cells(records).values():
        lines.append(
            f"{stats.fault_family:<11} {stats.intensity:<6} {stats.mechanism:<8} "
            f"{stats.n:>4} {_fmt(stats.availability, pct=True):>6} "
            f"{_fmt(stats.mean_ttr):>7} "
            f"{_fmt(stats.goodput_retained, pct=True):>8} "
            f"{_fmt(stats.p50_duration):>8} {_fmt(stats.p99_duration):>8} "
            f"{stats.n_aborted:>6}"
        )
    lines.append("")
    lines.append("mechanism separation per fault cell (max - min across arms):")
    for (family, intensity), (d_avail, d_p99) in mechanism_separation(
        records
    ).items():
        lines.append(
            f"  {family:<11} {intensity:<6}: availability {_fmt(d_avail, pct=True)}, "
            f"p99 {_fmt(d_p99)} s"
        )
    return "\n".join(lines)
