"""Core metric definitions over measurement stores.

All statistics the paper reports are derived from
:class:`~repro.trace.store.TraceStore` rows here; the figure/table modules
compose these primitives.

Conventions (paper §3.1):

* **improvement** = (selected - direct) / direct, where *selected* is the
  selecting client's bulk transfer throughput and *direct* the concurrent
  control client's throughput;
* Fig. 1-style distributions are conditioned on the **indirect path having
  been selected** (transfers where the probe chose the direct path have
  improvement ~0 by construction and are excluded);
* **penalty** = a negative improvement; its magnitude is reported relative
  to the selected path (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.trace.store import TraceStore

__all__ = [
    "improvements_when_indirect",
    "all_improvements",
    "indirect_utilization",
    "positive_given_indirect",
    "HeadlineStats",
    "headline_stats",
    "mean_improvement_by_site",
]


def improvements_when_indirect(store: TraceStore) -> np.ndarray:
    """Improvement percentages of transfers that rode the indirect path."""
    sub = store.filter(used_indirect=True)
    return sub.column("improvement_percent")


def all_improvements(store: TraceStore) -> np.ndarray:
    """Improvement percentages of every transfer (direct selections included)."""
    return store.column("improvement_percent")


def indirect_utilization(store: TraceStore) -> float:
    """Fraction of transfers in which the indirect path was selected.

    This is the paper's *total utilisation* notion when restricted to rows
    using one candidate relay (§3.4), and the overall selection rate
    otherwise.  NaN for empty stores.
    """
    if len(store) == 0:
        return float("nan")
    return float(np.mean(store.column("used_indirect")))


def positive_given_indirect(store: TraceStore) -> float:
    """P(improvement > 0 | indirect selected); NaN if never selected."""
    imps = improvements_when_indirect(store)
    if imps.size == 0:
        return float("nan")
    return float(np.mean(imps > 0.0))


@dataclass(frozen=True)
class HeadlineStats:
    """The paper's §6 headline numbers."""

    n_transfers: int
    utilization: float
    positive_given_indirect: float
    mean_improvement_when_indirect: float
    median_improvement_when_indirect: float

    @property
    def effective_benefit_rate(self) -> float:
        """P(indirect selected AND positive improvement).

        The paper estimates this as ~40% (88% positive x 45% utilisation).
        """
        return self.utilization * self.positive_given_indirect


def headline_stats(store: TraceStore) -> HeadlineStats:
    """Compute the §6 headline statistics for a measurement campaign."""
    imps = improvements_when_indirect(store)
    return HeadlineStats(
        n_transfers=len(store),
        utilization=indirect_utilization(store),
        positive_given_indirect=positive_given_indirect(store),
        mean_improvement_when_indirect=float(np.mean(imps)) if imps.size else float("nan"),
        median_improvement_when_indirect=(
            float(np.median(imps)) if imps.size else float("nan")
        ),
    )


def mean_improvement_by_site(store: TraceStore) -> Dict[str, float]:
    """Average improvement (conditioned on indirect) per destination site.

    The paper reports this band as 33-49% across eBay/Google/Microsoft/
    Yahoo (§2.2).
    """
    out: Dict[str, float] = {}
    for site, sub in store.group_by("site").items():
        imps = improvements_when_indirect(sub)
        out[site] = float(np.mean(imps)) if imps.size else float("nan")
    return out
