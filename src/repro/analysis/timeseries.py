"""Indirect-path throughput over time: the paper's Fig. 4.

The paper plots, per client, the throughput observed on the indirect path at
each transfer that used it, and notes the series show "no discernable
uptrend or downtrend" (though jumps occur).  We reproduce the series and
make the claim quantitative with the Mann-Kendall test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.trace.store import TraceStore
from repro.util.trend import TrendResult, mann_kendall
from repro.util.units import bytes_per_s_to_mbps

__all__ = ["IndirectThroughputSeries", "indirect_throughput_series"]


@dataclass(frozen=True)
class IndirectThroughputSeries:
    """One client's indirect-path throughput time series and its trend test."""

    client: str
    times: np.ndarray
    throughput_mbps: np.ndarray
    trend: TrendResult

    @property
    def n_points(self) -> int:
        return int(self.times.size)

    @property
    def has_trend(self) -> bool:
        """True when Mann-Kendall finds a significant monotone trend."""
        return self.trend.has_trend

    @property
    def jump_count(self) -> float:
        """Number of step changes larger than 50% of the series median.

        The paper notes "a few small jumps" explain residual penalties.
        """
        if self.throughput_mbps.size < 2:
            return 0
        med = float(np.median(self.throughput_mbps))
        if med <= 0.0:
            return 0
        steps = np.abs(np.diff(self.throughput_mbps))
        return int(np.sum(steps > 0.5 * med))


def indirect_throughput_series(
    store: TraceStore,
    *,
    clients: Optional[list] = None,
    alpha: float = 0.05,
) -> Dict[str, IndirectThroughputSeries]:
    """Fig. 4: per-client (time, indirect throughput) series with trend tests.

    Only transfers that selected the indirect path contribute, mirroring the
    paper's measurement ("each time a client node performed a transfer on
    the indirect path, throughput was measured").
    """
    groups = store.filter(used_indirect=True).group_by("client")
    names = clients if clients is not None else sorted(groups)
    out: Dict[str, IndirectThroughputSeries] = {}
    for name in names:
        sub = groups.get(name, TraceStore())
        times = sub.column("start_time").astype(np.float64)
        tput = bytes_per_s_to_mbps(sub.column("selected_throughput").astype(np.float64))
        order = np.argsort(times, kind="stable")
        times, tput = times[order], tput[order]
        out[name] = IndirectThroughputSeries(
            client=name,
            times=times,
            throughput_mbps=tput,
            trend=mann_kendall(tput, times, alpha=alpha),
        )
    return out
