"""Random-set-size analysis: the paper's Fig. 6.

For each client and each random-set size k, the average improvement over
*all* transfers (direct selections contribute their ~0 improvement) is
plotted against k.  The paper's finding: the curves rise steeply and level
off around k ~ 10 of 35 relays - most of the attainable improvement comes
from a modest random subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.trace.store import TraceStore

__all__ = ["RandomSetCurve", "random_set_curves", "saturation_point"]


@dataclass(frozen=True)
class RandomSetCurve:
    """Mean improvement vs set size for one client."""

    client: str
    set_sizes: np.ndarray
    mean_improvement_percent: np.ndarray
    n_per_point: np.ndarray

    def value_at(self, k: int) -> float:
        """Mean improvement at set size ``k`` (KeyError if not measured)."""
        idx = np.flatnonzero(self.set_sizes == k)
        if idx.size == 0:
            raise KeyError(f"set size {k} was not measured for {self.client}")
        return float(self.mean_improvement_percent[idx[0]])


def random_set_curves(
    store: TraceStore,
    *,
    clients: Optional[List[str]] = None,
) -> Dict[str, RandomSetCurve]:
    """Fig. 6: per-client mean improvement as a function of set size."""
    groups = store.group_by("client")
    names = clients if clients is not None else sorted(groups)
    out: Dict[str, RandomSetCurve] = {}
    for name in names:
        sub = groups.get(name, TraceStore())
        ks = sorted({r.set_size for r in sub})
        means: List[float] = []
        counts: List[int] = []
        for k in ks:
            rows = sub.filter(set_size=k)
            imps = rows.column("improvement_percent")
            means.append(float(np.mean(imps)) if imps.size else float("nan"))
            counts.append(len(rows))
        out[name] = RandomSetCurve(
            client=name,
            set_sizes=np.asarray(ks, dtype=np.intp),
            mean_improvement_percent=np.asarray(means),
            n_per_point=np.asarray(counts, dtype=np.intp),
        )
    return out


def saturation_point(curve: RandomSetCurve, *, fraction: float = 0.9) -> int:
    """Smallest k achieving ``fraction`` of the curve's maximum improvement.

    The paper eyeballs "levels off at about 10 nodes"; this makes the
    criterion explicit.  Curves with non-positive maxima return the smallest
    measured k.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if curve.set_sizes.size == 0:
        raise ValueError(f"curve for {curve.client} is empty")
    peak = float(np.nanmax(curve.mean_improvement_percent))
    if peak <= 0.0:
        return int(curve.set_sizes[0])
    target = fraction * peak
    for k, v in zip(curve.set_sizes, curve.mean_improvement_percent):
        if v >= target:
            return int(k)
    return int(curve.set_sizes[-1])
