"""Throughput-variability reduction: the paper's closing claim.

§6: "Indirect routing can also be used to decrease throughput variability
experienced by clients."  The mechanism is selection itself: when the
direct path dips, the client escapes to a stable overlay path, clipping the
lower tail of its throughput distribution.

This analysis compares, per client, the coefficient of variation (CV) of
the control client's direct throughput against the CV of the selecting
client's achieved throughput over the same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.trace.store import TraceStore
from repro.util.stats import coefficient_of_variation

__all__ = ["VariabilityComparison", "variability_reduction"]


@dataclass(frozen=True)
class VariabilityComparison:
    """One client's throughput variability with and without selection."""

    client: str
    n_transfers: int
    direct_cv: float
    selected_cv: float
    direct_p10: float
    selected_p10: float

    @property
    def cv_reduced(self) -> bool:
        """True when selection lowered the coefficient of variation."""
        return self.selected_cv < self.direct_cv

    @property
    def floor_raised(self) -> bool:
        """True when selection raised the 10th-percentile throughput."""
        return self.selected_p10 > self.direct_p10

    @property
    def cv_reduction_percent(self) -> float:
        """Relative CV reduction in percent (negative = increased)."""
        if self.direct_cv == 0.0:
            return 0.0
        return 100.0 * (self.direct_cv - self.selected_cv) / self.direct_cv


def variability_reduction(
    store: TraceStore,
    *,
    clients: Optional[Sequence[str]] = None,
    min_transfers: int = 8,
) -> Dict[str, VariabilityComparison]:
    """Per-client variability comparison over a paired campaign.

    Clients with fewer than ``min_transfers`` rows are skipped (CV of a
    handful of samples is noise).
    """
    groups = store.group_by("client")
    names = clients if clients is not None else sorted(groups)
    out: Dict[str, VariabilityComparison] = {}
    for name in names:
        sub = groups.get(name)
        if sub is None or len(sub) < min_transfers:
            continue
        direct = sub.column("direct_throughput").astype(np.float64)
        selected = sub.column("selected_throughput").astype(np.float64)
        out[name] = VariabilityComparison(
            client=name,
            n_transfers=len(sub),
            direct_cv=coefficient_of_variation(direct),
            selected_cv=coefficient_of_variation(selected),
            direct_p10=float(np.percentile(direct, 10)),
            selected_p10=float(np.percentile(selected, 10)),
        )
    return out
