"""Zero-overhead-when-disabled instrumentation core.

One process-local :class:`Observer` collects everything the stack emits:

counters
    Monotone floats (``obs.count("alloc.cache_rebuild")``).
gauges
    Last-written values (``obs.gauge("sim.queue_depth", 3.0)``); a
    set-if-greater variant (:meth:`Observer.gauge_max`) records high-water
    marks deterministically.
histograms
    Fixed-bucket distributions (``obs.observe_value("runner.queue_wait_seconds",
    0.02)``).  Buckets are fixed at first observation, so shard merges are
    exact element-wise sums.
spans and events
    Timestamped records (:class:`ObsRecord`).  Sim-core spans carry
    *simulation* times; runner-edge spans carry seconds on the executor's
    injected monotonic clock, distinguished by their ``track``.  Records are
    ordered by ``(start, track, seq)`` where ``seq`` is a deterministic
    per-observer sequence number - never a wall-clock reading - so traces
    from identical runs are byte-identical and diffable.

Enabling
--------
``REPRO_OBS=1`` (process-wide), ``Simulator(observe=True)`` (per kernel), or
the CLI ``--obs`` flag.  When disabled every instrumentation point reduces
to one ``is not None`` test on a cached attribute, so the hot paths pay
nothing; enabling it never changes simulation behaviour, only observes it
(study artefacts are byte-identical either way).

The module is stdlib-only and imports nothing from the simulation stack, so
every layer may import it freely.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_RECORDS",
    "DEFAULT_TRACK",
    "OBS_DIR_ENV_VAR",
    "OBS_ENV_VAR",
    "SCHEMA",
    "Histogram",
    "ObsRecord",
    "Observer",
    "global_observer",
    "install_observer",
    "observe_enabled_from_env",
    "reset_global_observer",
    "shard_directory_from_env",
]

#: Schema tag stamped into exported traces.
SCHEMA = "repro-obs/1"

#: Environment variable enabling process-wide observation.
OBS_ENV_VAR = "REPRO_OBS"
#: Directory worker processes dump their trace shards into (set by the CLI).
OBS_DIR_ENV_VAR = "REPRO_OBS_DIR"
_TRUTHY = {"1", "true", "yes", "on"}

#: Track name for records that do not name one explicitly.
DEFAULT_TRACK = "main"

#: Default histogram bucket upper bounds: a decade ladder wide enough for
#: sub-millisecond allocator solves and multi-minute campaign waits alike.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1_000.0,
)

#: Span/event records kept in memory before the observer starts dropping
#: (the ``dropped`` counter records how many were lost).
DEFAULT_MAX_RECORDS = 250_000


def observe_enabled_from_env(environ: Optional[Mapping[str, str]] = None) -> bool:
    """True when ``REPRO_OBS`` requests process-wide observation."""
    env: Mapping[str, str] = os.environ if environ is None else environ
    return env.get(OBS_ENV_VAR, "").strip().lower() in _TRUTHY


def shard_directory_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[str]:
    """Directory worker processes should dump trace shards into, or ``None``."""
    env: Mapping[str, str] = os.environ if environ is None else environ
    value = env.get(OBS_DIR_ENV_VAR, "").strip()
    return value or None


class Histogram:
    """A fixed-bucket histogram (bounds are upper edges, plus overflow).

    ``counts[i]`` holds observations ``<= bounds[i]`` (and greater than the
    previous bound); ``counts[-1]`` is the overflow bucket.  Min/max/sum are
    tracked exactly, so :meth:`quantile` can clamp its bucket-edge estimate
    to the observed range.
    """

    __slots__ = ("bounds", "counts", "total", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS):
        ordered = tuple(float(b) for b in bounds)
        if not ordered or any(nxt <= prev for nxt, prev in zip(ordered[1:], ordered)):
            raise ValueError(f"bucket bounds must be strictly increasing, got {bounds}")
        self.bounds: Tuple[float, ...] = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Add one observation."""
        v = float(value)
        idx = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if v <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.total += 1
        self.sum += v
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0.0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-edge estimate of the ``q``-quantile (0 <= q <= 1).

        Returns the upper bound of the first bucket whose cumulative count
        reaches ``q * total``, clamped to the observed min/max; 0.0 when the
        histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        cum = 0
        estimate = self.max
        for i, count in enumerate(self.counts):
            cum += count
            if cum >= rank:
                estimate = self.bounds[i] if i < len(self.bounds) else self.max
                break
        return min(max(estimate, self.min), self.max)

    def merge_in(self, other: "Histogram") -> None:
        """Element-wise accumulate ``other`` (bounds must match exactly)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible rendering."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": self.min if self.total else None,
            "max": self.max if self.total else None,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Histogram":
        """Inverse of :meth:`to_dict`."""
        hist = cls(tuple(d["bounds"]))
        counts = [int(c) for c in d["counts"]]
        if len(counts) != len(hist.counts):
            raise ValueError("histogram counts do not match bounds")
        hist.counts = counts
        hist.total = int(d["total"])
        hist.sum = float(d["sum"])
        if d.get("min") is not None:
            hist.min = float(d["min"])
        if d.get("max") is not None:
            hist.max = float(d["max"])
        return hist


class ObsRecord:
    """One completed span (``kind="span"``) or point event (``kind="event"``).

    ``start``/``end`` are in the emitting layer's clock domain (sim seconds
    for sim-core tracks, executor-clock seconds for runner tracks); events
    have ``end == start``.  ``seq`` is the observer's deterministic sequence
    number; ``args`` is a small JSON-compatible payload.
    """

    __slots__ = ("kind", "category", "name", "start", "end", "seq", "track", "args")

    def __init__(
        self,
        kind: str,
        category: str,
        name: str,
        start: float,
        end: float,
        seq: int,
        track: str,
        args: Optional[Dict[str, Any]] = None,
    ):
        self.kind = kind
        self.category = category
        self.name = name
        self.start = start
        self.end = end
        self.seq = seq
        self.track = track
        self.args = args

    @property
    def duration(self) -> float:
        """Span length in its clock domain's seconds (0.0 for events)."""
        return self.end - self.start

    @property
    def sort_key(self) -> Tuple[float, str, int]:
        """Deterministic merge order: time, then track, then sequence."""
        return (self.start, self.track, self.seq)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible rendering (args omitted when empty)."""
        out: Dict[str, Any] = {
            "type": self.kind,
            "cat": self.category,
            "name": self.name,
            "t0": self.start,
            "t1": self.end,
            "seq": self.seq,
            "track": self.track,
        }
        if self.args:
            out["args"] = self.args
        return out

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ObsRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(d["type"]),
            category=str(d["cat"]),
            name=str(d["name"]),
            start=float(d["t0"]),
            end=float(d["t1"]),
            seq=int(d["seq"]),
            track=str(d["track"]),
            args=dict(d["args"]) if d.get("args") else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ObsRecord({self.kind} {self.category}:{self.name} "
            f"[{self.start:.6g}, {self.end:.6g}] track={self.track} seq={self.seq})"
        )


class Observer:
    """Process-local registry of counters, gauges, histograms and records.

    Instrumentation points hold an ``Optional[Observer]`` and guard every
    emission with ``if obs is not None`` - the disabled path costs one
    attribute test.  All sequencing is deterministic (an internal counter,
    never a clock), so two identical runs produce identical observers.
    """

    __slots__ = (
        "track",
        "counters",
        "gauges",
        "histograms",
        "records",
        "max_records",
        "dropped",
        "_seq",
    )

    def __init__(
        self,
        *,
        track: str = DEFAULT_TRACK,
        max_records: int = DEFAULT_MAX_RECORDS,
    ):
        #: Default track stamped on records that do not name one.
        self.track = track
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.records: List[ObsRecord] = []
        self.max_records = int(max_records)
        #: Span/event records discarded after ``max_records`` was reached.
        self.dropped = 0
        self._seq = 0

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def count(self, name: str, n: float = 1.0) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0.0) + n

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0.0 when never written)."""
        return self.counters.get(name, 0.0)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if greater (high-water mark)."""
        v = float(value)
        current = self.gauges.get(name)
        if current is None or v > current:
            self.gauges[name] = v

    def observe_value(
        self,
        name: str,
        value: float,
        *,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        """Add ``value`` to histogram ``name`` (created on first use).

        ``bounds`` only applies at creation; later observations reuse the
        histogram's existing buckets.
        """
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(
                DEFAULT_BUCKETS if bounds is None else bounds
            )
        hist.observe(value)

    # ------------------------------------------------------------------ #
    # spans and events
    # ------------------------------------------------------------------ #
    def span(
        self,
        category: str,
        name: str,
        start: float,
        end: float,
        *,
        track: Optional[str] = None,
        **args: Any,
    ) -> None:
        """Record a completed span ``[start, end]`` (times in the caller's
        clock domain; never a wall-clock reading - see rule QA-D006)."""
        self._record("span", category, name, start, end, track, args)

    def event(
        self,
        category: str,
        name: str,
        time: float,
        *,
        track: Optional[str] = None,
        **args: Any,
    ) -> None:
        """Record a point event at ``time``."""
        self._record("event", category, name, time, time, track, args)

    def _record(
        self,
        kind: str,
        category: str,
        name: str,
        start: float,
        end: float,
        track: Optional[str],
        args: Dict[str, Any],
    ) -> None:
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        seq = self._seq
        self._seq = seq + 1
        self.records.append(
            ObsRecord(
                kind,
                category,
                name,
                float(start),
                float(end),
                seq,
                self.track if track is None else track,
                args or None,
            )
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def has_data(self) -> bool:
        """True when anything at all has been recorded."""
        return bool(
            self.records or self.counters or self.gauges or self.histograms
        )

    def span_summary(self) -> Dict[str, Any]:
        """Per-category span counts and cumulative durations.

        The shape embedded as ``obs_summary`` in perf reports:
        ``{"spans": {category: {"count": n, "total_time": s}},
        "events": m, "dropped": k}`` with categories sorted by name.
        """
        per_cat: Dict[str, Dict[str, Any]] = {}
        n_events = 0
        for record in self.records:
            if record.kind != "span":
                n_events += 1
                continue
            bucket = per_cat.setdefault(
                record.category, {"count": 0, "total_time": 0.0}
            )
            bucket["count"] += 1
            bucket["total_time"] += record.duration
        return {
            "spans": {cat: per_cat[cat] for cat in sorted(per_cat)},
            "events": n_events,
            "dropped": self.dropped,
        }

    def reset(self) -> None:
        """Drop every metric and record (sequence numbers restart at 0)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.records.clear()
        self.dropped = 0
        self._seq = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Observer(track={self.track!r}, records={len(self.records)}, "
            f"counters={len(self.counters)}, dropped={self.dropped})"
        )


# --------------------------------------------------------------------------- #
# the process-global observer
# --------------------------------------------------------------------------- #
_GLOBAL: Optional[Observer] = None


def global_observer(*, create: Optional[bool] = None) -> Optional[Observer]:
    """The process-global observer, or ``None`` when observation is off.

    With ``create=None`` (the default) an observer is created lazily iff
    ``REPRO_OBS`` enables observation; ``create=True`` forces creation (the
    ``Simulator(observe=True)`` and CLI ``--obs`` paths); ``create=False``
    only returns an already-installed observer.
    """
    global _GLOBAL
    if _GLOBAL is not None:
        return _GLOBAL
    if create is None:
        create = observe_enabled_from_env()
    if create:
        _GLOBAL = Observer()
    return _GLOBAL


def install_observer(observer: Observer) -> Observer:
    """Install ``observer`` as the process-global observer and return it."""
    global _GLOBAL
    _GLOBAL = observer
    return observer


def reset_global_observer() -> None:
    """Forget the process-global observer (tests, campaign boundaries)."""
    global _GLOBAL
    _GLOBAL = None
