"""Cross-run trace diffing: attribute drift to a subsystem, not a number.

``repro obs diff A B`` aligns two :class:`~repro.obs.export.ObsTrace`
files on three axes and reports what moved:

* **spans** - per ``(category, track)``: record count and summed duration
  (drift here names the subsystem: ``transfer`` vs ``probe`` vs ``tick``);
* **counters / gauges** - by metric name;
* **histograms** - by metric name: observation count, sum, and the
  p50/p99 bucket-edge quantiles.

Two identical-seed runs produce byte-identical sim-domain traces, so the
default tolerances are *zero* and CI can gate on the exit code.  The
wall-clock domain (executor ``unit`` spans, ``runner.*`` metrics) is
nondeterministic by design and excluded unless explicitly included; it is
reported but never gated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.obs.core import Histogram
from repro.obs.export import ObsTrace
from repro.obs.insight import WALLCLOCK_CATEGORIES, is_wallclock_metric

__all__ = [
    "DiffTolerances",
    "DriftItem",
    "TraceDiff",
    "diff_traces",
    "render_diff",
]

_QUANTILES = (0.5, 0.99)


@dataclass(frozen=True)
class DiffTolerances:
    """Per-axis drift tolerances (all zero: require identical traces).

    Relative tolerances compare ``|b - a|`` against ``rel * max(|a|, |b|)``;
    absolute tolerances are in the metric's own unit.  A delta within
    *either* bound is clean.
    """

    counter_rel: float = 0.0
    counter_abs: float = 0.0
    duration_rel: float = 0.0
    duration_abs: float = 0.0
    quantile_rel: float = 0.0

    def within(self, a: float, b: float, *, rel: float, abs_tol: float) -> bool:
        if a == b:
            return True
        if math.isnan(a) and math.isnan(b):
            return True
        delta = abs(b - a)
        return delta <= abs_tol or delta <= rel * max(abs(a), abs(b))


@dataclass(frozen=True)
class DriftItem:
    """One aligned quantity and its delta between the two traces."""

    axis: str  # "span" | "counter" | "gauge" | "histogram"
    name: str  # span category for spans, metric name otherwise
    stat: str  # "count" | "duration" | "value" | "sum" | "p50" | "p99"
    a: float
    b: float
    within: bool
    gated: bool  # False for wall-clock-domain items (reported, not gated)

    @property
    def delta(self) -> float:
        return self.b - self.a


@dataclass
class TraceDiff:
    """All aligned quantities; ``clean`` gates on the sim-time domain."""

    items: List[DriftItem] = field(default_factory=list)

    @property
    def drifted(self) -> List[DriftItem]:
        return [i for i in self.items if i.gated and not i.within]

    @property
    def clean(self) -> bool:
        return not self.drifted

    def drift_categories(self) -> List[str]:
        """Span categories with gated drift, most-moved first."""
        moved: Dict[str, float] = {}
        for item in self.drifted:
            if item.axis == "span":
                moved[item.name] = max(moved.get(item.name, 0.0), abs(item.delta))
        return [c for c, _ in sorted(moved.items(), key=lambda kv: (-kv[1], kv[0]))]


def _span_rollup(trace: ObsTrace) -> Dict[str, Tuple[int, float]]:
    # Keyed by category only: which *track* (worker) a span landed on is
    # executor placement and changes with --jobs, while per-category counts
    # and sim-time totals are invariant for an identical-seed campaign.
    out: Dict[str, Tuple[int, float]] = {}
    for rec in trace.records:
        if rec.kind != "span":
            continue
        n, total = out.get(rec.category, (0, 0.0))
        end = rec.end if rec.end is not None else rec.start
        out[rec.category] = (n + 1, total + (end - rec.start))
    return out


def _hist_stats(hist: Histogram) -> Dict[str, float]:
    stats = {"count": float(hist.total), "sum": hist.sum}
    for q in _QUANTILES:
        stats[f"p{int(100 * q)}"] = hist.quantile(q)
    return stats


def diff_traces(
    a: ObsTrace,
    b: ObsTrace,
    tolerances: DiffTolerances = DiffTolerances(),
    *,
    include_wallclock: bool = False,
) -> TraceDiff:
    """Align ``a`` and ``b`` and report every delta.

    Quantities absent from one side compare against 0 (a missing counter
    is a drift of its full value).  ``include_wallclock=True`` gates the
    executor-domain items too - only meaningful when both traces were
    produced by the same ``--jobs`` configuration *and* wall-clock noise
    is acceptable; the default reports them ungated.
    """
    diff = TraceDiff()
    tol = tolerances

    spans_a, spans_b = _span_rollup(a), _span_rollup(b)
    for cat in sorted(set(spans_a) | set(spans_b)):
        na, da = spans_a.get(cat, (0, 0.0))
        nb, db = spans_b.get(cat, (0, 0.0))
        gated = include_wallclock or cat not in WALLCLOCK_CATEGORIES
        name = cat
        diff.items.append(
            DriftItem(
                axis="span",
                name=name,
                stat="count",
                a=float(na),
                b=float(nb),
                within=(na == nb),
                gated=gated,
            )
        )
        diff.items.append(
            DriftItem(
                axis="span",
                name=name,
                stat="duration",
                a=da,
                b=db,
                within=tol.within(da, db, rel=tol.duration_rel, abs_tol=tol.duration_abs),
                gated=gated,
            )
        )

    for axis, da_map, db_map in (
        ("counter", a.counters, b.counters),
        ("gauge", a.gauges, b.gauges),
    ):
        for name in sorted(set(da_map) | set(db_map)):
            va, vb = da_map.get(name, 0.0), db_map.get(name, 0.0)
            gated = include_wallclock or not is_wallclock_metric(name)
            diff.items.append(
                DriftItem(
                    axis=axis,
                    name=name,
                    stat="value",
                    a=va,
                    b=vb,
                    within=tol.within(va, vb, rel=tol.counter_rel, abs_tol=tol.counter_abs),
                    gated=gated,
                )
            )

    empty = Histogram(bounds=(1.0,))
    for name in sorted(set(a.histograms) | set(b.histograms)):
        ha = a.histograms.get(name, empty)
        hb = b.histograms.get(name, empty)
        sa, sb = _hist_stats(ha), _hist_stats(hb)
        gated = include_wallclock or not is_wallclock_metric(name)
        for stat in sorted(sa):
            va, vb = sa[stat], sb[stat]
            if stat == "count":
                within = va == vb
            else:
                within = tol.within(va, vb, rel=tol.quantile_rel, abs_tol=0.0)
            diff.items.append(
                DriftItem(
                    axis="histogram",
                    name=name,
                    stat=stat,
                    a=va,
                    b=vb,
                    within=within,
                    gated=gated,
                )
            )
    return diff


def _fmt(v: float) -> str:
    if math.isnan(v):
        return "nan"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.6g}"


def render_diff(diff: TraceDiff, *, verbose: bool = False) -> str:
    """Human-readable diff report; drift first, clean lines under -v."""
    lines: List[str] = []
    drifted = diff.drifted
    ungated = [i for i in diff.items if not i.gated and not i.within]
    if diff.clean:
        lines.append(f"zero drift: {len(diff.items)} aligned quantities match")
    else:
        cats = diff.drift_categories()
        lines.append(
            f"drift in {len(drifted)} of {len(diff.items)} aligned quantities"
            + (f" (span categories: {', '.join(cats)})" if cats else "")
        )
        for item in drifted:
            lines.append(
                f"  DRIFT {item.axis:<9} {item.name} {item.stat}: "
                f"{_fmt(item.a)} -> {_fmt(item.b)} (delta {_fmt(item.delta)})"
            )
    if ungated:
        lines.append(
            f"  ({len(ungated)} wall-clock-domain deltas ignored; "
            "--include-wallclock gates them)"
        )
    if verbose:
        for item in diff.items:
            if item.within:
                lines.append(
                    f"  ok    {item.axis:<9} {item.name} {item.stat}: {_fmt(item.a)}"
                )
    return "\n".join(lines)
