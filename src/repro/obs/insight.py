"""Critical-path attribution over observability traces.

Decomposes every session span in an :class:`~repro.obs.export.ObsTrace`
into named *phases* - where the (sim) time actually went - and aggregates
the result into tail-attribution summaries ("p99 is 71% stall, 22%
backoff").  The phases mirror the repo's session machinery:

``probe``
    the initial probe race (spans with category ``"probe"`` before the
    first recovery event);
``reprobe``
    any later probe race triggered by the resilience loop;
``stall``
    watchdog-detected idle time: a ``stall`` recovery event at time *t*
    with ``detail`` = idle seconds covers ``[t - detail, t]``;
``backoff``
    failover backoff waits: a ``backoff`` event at *t* with ``detail`` =
    wait seconds covers ``[t, t + detail]`` (clipped at the deadline);
``straggle``
    striped-lane straggling - instants where exactly one stripe lane has
    a block in flight (the other lanes have finished and the session is
    waiting on the slow one);
``transfer``
    bytes actually moving: transfer spans, or >= 2 live stripe lanes;
``other``
    the residual (scheduling gaps, request fan-out, commit bookkeeping).

When intervals overlap - a stall is detected *during* a transfer attempt,
a probe races while the deadline backoff still runs - the more diagnostic
phase wins: probe/reprobe > stall > backoff > straggle > transfer.  The
decomposition is a partition of the session interval, so the per-phase
seconds sum exactly to the session span duration (asserted in tests).

Reconstruction relies on two substrate invariants (DESIGN.md §14): each
track is written by exactly one :class:`~repro.obs.core.Observer` whose
``seq`` is monotone, and sessions execute serially per track with child
spans emitted *before* the session span and recovery events immediately
*after* it.  Grouping records per track in ``seq`` order therefore
assigns children to sessions unambiguously, even in merged multi-worker
traces.  Wall-clock records (executor ``unit`` spans) are excluded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.core import ObsRecord
from repro.obs.export import ObsTrace

__all__ = [
    "PHASES",
    "WALLCLOCK_CATEGORIES",
    "WALLCLOCK_METRIC_PREFIXES",
    "SessionPhases",
    "TailAttribution",
    "attribute_trace",
    "decompose_session",
    "group_children",
    "is_wallclock_metric",
    "phase_totals",
    "tail_attribution",
    "render_insight",
]

#: Attribution vocabulary, highest diagnostic priority first (``other`` is
#: the residual and never competes).
PHASES: Tuple[str, ...] = (
    "probe",
    "reprobe",
    "stall",
    "backoff",
    "straggle",
    "transfer",
    "other",
)

#: Span categories recorded in executor wall-clock seconds (QA-D006 keeps
#: them out of sim payloads, but the runner's own unit spans are wall
#: time by design).  Attribution and deterministic diffing skip them.
WALLCLOCK_CATEGORIES = frozenset({"unit"})

#: Metric-name prefixes that live in the wall-clock domain (executor queue
#: waits, retry counts keyed by worker identity).
WALLCLOCK_METRIC_PREFIXES: Tuple[str, ...] = ("runner.",)

_CHILD_SPAN_CATEGORIES = frozenset({"probe", "transfer", "stripe"})
_PRIORITY: Dict[str, int] = {
    "probe": 6,
    "reprobe": 5,
    "stall": 4,
    "backoff": 3,
    "straggle": 2,
    "transfer": 1,
}
_EPS = 1e-9


@dataclass(frozen=True)
class SessionPhases:
    """One session span's time, partitioned into :data:`PHASES`."""

    name: str
    track: str
    start: float
    end: float
    outcome: str
    stripe_k: int
    phases: Dict[str, float]

    @property
    def duration(self) -> float:
        return self.end - self.start

    def fraction(self, phase: str) -> float:
        """Share of the session spent in ``phase``; NaN for zero-length."""
        if self.duration <= 0.0:
            return math.nan
        return self.phases.get(phase, 0.0) / self.duration


@dataclass(frozen=True)
class TailAttribution:
    """Where the slow quantile of sessions spends its time.

    ``fractions`` maps each phase to its share of the *total* time spent
    by sessions at or above the ``q`` duration quantile.
    """

    q: float
    threshold: float
    n_sessions: int
    n_tail: int
    fractions: Dict[str, float] = field(default_factory=dict)


def _clip(lo: float, hi: float, start: float, end: float) -> Optional[Tuple[float, float]]:
    a, b = max(lo, start), min(hi, end)
    if b - a <= 0.0:
        return None
    return (a, b)


def _claims(
    session: ObsRecord, children: Sequence[ObsRecord]
) -> Tuple[List[Tuple[float, float, str]], List[Tuple[float, float]]]:
    """Phase claims plus raw stripe-lane intervals, clipped to the session."""
    s0, s1 = session.start, session.end if session.end is not None else session.start
    claims: List[Tuple[float, float, str]] = []
    lanes: List[Tuple[float, float]] = []
    first_recovery = math.inf
    for rec in children:
        if rec.kind == "event" and rec.category == "recovery":
            first_recovery = min(first_recovery, rec.start)
    for rec in children:
        r0 = rec.start
        r1 = rec.end if rec.end is not None else rec.start
        if rec.kind == "span" and rec.category == "probe":
            phase = "reprobe" if r0 > first_recovery else "probe"
            iv = _clip(r0, r1, s0, s1)
            if iv is not None:
                claims.append((iv[0], iv[1], phase))
        elif rec.kind == "span" and rec.category == "transfer":
            iv = _clip(r0, r1, s0, s1)
            if iv is not None:
                claims.append((iv[0], iv[1], "transfer"))
        elif rec.kind == "span" and rec.category == "stripe":
            iv = _clip(r0, r1, s0, s1)
            if iv is not None:
                lanes.append(iv)
        elif rec.kind == "event" and rec.category == "recovery":
            detail = rec.args.get("detail")
            width = float(detail) if isinstance(detail, (int, float)) else 0.0
            if rec.name == "stall" and width > 0.0:
                iv = _clip(r0 - width, r0, s0, s1)
                if iv is not None:
                    claims.append((iv[0], iv[1], "stall"))
            elif rec.name == "backoff" and width > 0.0:
                iv = _clip(r0, r0 + width, s0, s1)
                if iv is not None:
                    claims.append((iv[0], iv[1], "backoff"))
    return claims, lanes


def decompose_session(
    session: ObsRecord, children: Sequence[ObsRecord]
) -> SessionPhases:
    """Partition one session span's interval into :data:`PHASES`.

    Boundary sweep: every claim endpoint splits ``[start, end]`` into
    elementary segments; each segment is charged to the highest-priority
    phase active at its midpoint.  ``other`` is computed as the residual
    ``duration - sum(attributed)`` so the partition is exact by
    construction.
    """
    s0 = session.start
    s1 = session.end if session.end is not None else session.start
    claims, lanes = _claims(session, children)
    cuts = {s0, s1}
    for a, b, _phase in claims:
        cuts.add(a)
        cuts.add(b)
    for a, b in lanes:
        cuts.add(a)
        cuts.add(b)
    points = sorted(p for p in cuts if s0 <= p <= s1)
    attributed: Dict[str, List[float]] = {p: [] for p in PHASES if p != "other"}
    for left, right in zip(points, points[1:]):
        if right - left <= 0.0:
            continue
        mid = 0.5 * (left + right)
        live_lanes = sum(1 for a, b in lanes if a - _EPS <= mid <= b + _EPS)
        best: Optional[str] = None
        best_pri = 0
        for a, b, phase in claims:
            if a - _EPS <= mid <= b + _EPS and _PRIORITY[phase] > best_pri:
                best, best_pri = phase, _PRIORITY[phase]
        lane_phase: Optional[str] = None
        if live_lanes >= 2:
            lane_phase = "transfer"
        elif live_lanes == 1:
            lane_phase = "straggle"
        if lane_phase is not None and _PRIORITY[lane_phase] > best_pri:
            best = lane_phase
        if best is not None:
            attributed[best].append(right - left)
    phases = {p: math.fsum(vals) for p, vals in attributed.items()}
    phases["other"] = (s1 - s0) - math.fsum(phases.values())
    args = session.args
    stripe_k = int(args.get("stripe_k", 0)) if isinstance(args.get("stripe_k"), (int, float)) else 0
    outcome = str(args.get("outcome", ""))
    return SessionPhases(
        name=session.name,
        track=session.track,
        start=s0,
        end=s1,
        outcome=outcome,
        stripe_k=stripe_k,
        phases=phases,
    )


def group_children(
    trace: ObsTrace,
) -> List[Tuple[ObsRecord, List[ObsRecord]]]:
    """Pair each session span with the records that belong to it.

    Per track, in ``seq`` order: probe/transfer/stripe spans accumulate
    until the session span that encloses them appears; ``recovery``
    events immediately following a session span (and inside its interval)
    attach to that session.  Records outside any session interval (fault
    windows, engine spans) are dropped.
    """
    by_track: Dict[str, List[ObsRecord]] = {}
    for rec in trace.records:
        if rec.category in WALLCLOCK_CATEGORIES:
            continue
        by_track.setdefault(rec.track, []).append(rec)
    groups: List[Tuple[ObsRecord, List[ObsRecord]]] = []
    for track in sorted(by_track):
        recs = sorted(by_track[track], key=lambda r: r.seq)
        pending: List[ObsRecord] = []
        open_group: Optional[Tuple[ObsRecord, List[ObsRecord]]] = None
        for rec in recs:
            if rec.kind == "span" and rec.category == "session":
                end = rec.end if rec.end is not None else rec.start
                children = [
                    c
                    for c in pending
                    if c.start >= rec.start - _EPS
                    and (c.end if c.end is not None else c.start) <= end + _EPS
                ]
                open_group = (rec, children)
                groups.append(open_group)
                pending = []
            elif rec.kind == "event" and rec.category == "recovery":
                if open_group is not None:
                    head = open_group[0]
                    head_end = head.end if head.end is not None else head.start
                    if head.start - _EPS <= rec.start <= head_end + _EPS:
                        open_group[1].append(rec)
            elif rec.kind == "span" and rec.category in _CHILD_SPAN_CATEGORIES:
                open_group = None
                pending.append(rec)
            elif rec.kind == "event" and rec.category == "probe":
                open_group = None
                pending.append(rec)
            else:
                open_group = None
    return groups


def attribute_trace(trace: ObsTrace) -> List[SessionPhases]:
    """Phase decomposition of every session span in ``trace``.

    Output order is deterministic: tracks sorted by name, sessions in
    execution (``seq``) order within each track.
    """
    return [decompose_session(s, kids) for s, kids in group_children(trace)]


def phase_totals(sessions: Iterable[SessionPhases]) -> Dict[str, float]:
    """Summed seconds per phase across ``sessions`` (all phases present)."""
    totals = {p: 0.0 for p in PHASES}
    for s in sessions:
        for p in PHASES:
            totals[p] += s.phases.get(p, 0.0)
    return totals


def _duration_quantile(durations: Sequence[float], q: float) -> float:
    """Nearest-rank quantile without numpy (exact, deterministic)."""
    if not durations:
        return math.nan
    ordered = sorted(durations)
    rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def tail_attribution(
    sessions: Sequence[SessionPhases], q: float = 0.99
) -> TailAttribution:
    """Phase shares of the sessions at or above the ``q`` duration quantile."""
    durations = [s.duration for s in sessions]
    threshold = _duration_quantile(durations, q)
    if not sessions or not math.isfinite(threshold):
        return TailAttribution(q=q, threshold=math.nan, n_sessions=len(sessions), n_tail=0)
    tail = [s for s in sessions if s.duration >= threshold]
    totals = phase_totals(tail)
    grand = math.fsum(totals.values())
    fractions = {
        p: (totals[p] / grand if grand > 0.0 else math.nan) for p in PHASES
    }
    return TailAttribution(
        q=q,
        threshold=threshold,
        n_sessions=len(sessions),
        n_tail=len(tail),
        fractions=fractions,
    )


def _pct(x: float) -> str:
    return "n/a" if not math.isfinite(x) else f"{100.0 * x:.1f}%"


def render_insight(
    sessions: Sequence[SessionPhases],
    quantiles: Sequence[float] = (0.5, 0.99),
) -> str:
    """Human-readable attribution report (the ``repro obs phases`` output)."""
    lines: List[str] = []
    lines.append("critical-path attribution")
    lines.append("=" * 72)
    lines.append(f"sessions: {len(sessions)}")
    totals = phase_totals(sessions)
    grand = math.fsum(totals.values())
    lines.append(f"total session time: {grand:.3f} s")
    lines.append("")
    lines.append(f"{'phase':<10} {'seconds':>12} {'share':>8}")
    lines.append("-" * 32)
    for p in PHASES:
        share = totals[p] / grand if grand > 0.0 else math.nan
        lines.append(f"{p:<10} {totals[p]:>12.3f} {_pct(share):>8}")
    for q in quantiles:
        tail = tail_attribution(sessions, q)
        lines.append("")
        if tail.n_tail == 0:
            lines.append(f"p{100 * q:g} tail: no sessions")
            continue
        lines.append(
            f"p{100 * q:g} tail ({tail.n_tail} sessions >= {tail.threshold:.3f} s):"
        )
        ranked = sorted(
            ((p, f) for p, f in tail.fractions.items() if math.isfinite(f) and f > 0.0),
            key=lambda kv: (-kv[1], kv[0]),
        )
        lines.append(
            "  " + ", ".join(f"{_pct(f)} {p}" for p, f in ranked)
            if ranked
            else "  (all phases zero)"
        )
    return "\n".join(lines)


def is_wallclock_metric(name: str) -> bool:
    """True when ``name`` belongs to the wall-clock (executor) domain."""
    return any(name.startswith(pfx) for pfx in WALLCLOCK_METRIC_PREFIXES)
