"""Exporters for :mod:`repro.obs` traces.

:class:`ObsTrace` is the serialisable snapshot of an
:class:`~repro.obs.core.Observer`: the JSONL event log (one record per
line, bracketed by a schema line and a metrics line), the Chrome
``trace_event`` rendering (loadable in Perfetto / ``about:tracing``), the
Prometheus text metrics dump, and the human-readable summary behind
``repro obs summarize``.  It also merges multi-worker shard traces into one
deterministic timeline, the TraceStore-merge analogue for telemetry.

Sim-time spans map to trace timestamps via :data:`repro.util.units.US_PER_S`
(Chrome timestamps are microseconds), and tracks map to one synthetic
thread each, so a 300-second simulated campaign renders as a 300-second
trace regardless of how fast it actually ran.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.obs.core import SCHEMA, Histogram, ObsRecord, Observer
from repro.util.units import s_to_us

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "ObsTrace",
    "validate_chrome_trace",
]

#: JSON Schema (subset) for the Chrome ``trace_event`` export, used by the
#: CI obs-smoke job and :func:`validate_chrome_trace`.
CHROME_TRACE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["ph", "pid", "tid", "name"],
                "properties": {
                    "ph": {"enum": ["X", "i", "M"]},
                    "pid": {"type": "integer"},
                    "tid": {"type": "integer"},
                    "name": {"type": "string"},
                    "cat": {"type": "string"},
                    "ts": {"type": "number"},
                    "dur": {"type": "number"},
                    "s": {"enum": ["t", "p", "g"]},
                    "args": {"type": "object"},
                },
            },
        },
        "displayTimeUnit": {"enum": ["ms", "ns"]},
    },
}

_JSON_TYPES: Dict[str, Union[type, Tuple[type, ...]]] = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


def _check_schema(value: Any, schema: Mapping[str, Any], path: str, errors: List[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        py_type = _JSON_TYPES[expected]
        ok = isinstance(value, py_type)
        # bool is an int subclass in Python; JSON keeps them distinct.
        if ok and expected in ("number", "integer") and isinstance(value, bool):
            ok = False
        if not ok:
            errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not one of {schema['enum']}")
        return
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                _check_schema(value[key], sub, f"{path}.{key}", errors)
    elif isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _check_schema(item, schema["items"], f"{path}[{i}]", errors)


def validate_chrome_trace(data: Any) -> List[str]:
    """Validate ``data`` against :data:`CHROME_TRACE_SCHEMA`.

    Returns a list of human-readable problems (empty when the trace is
    valid).  Beyond the structural schema, complete spans (``ph="X"``) must
    carry ``ts`` and ``dur`` and instants (``ph="i"``) must carry ``ts``.
    """
    errors: List[str] = []
    _check_schema(data, CHROME_TRACE_SCHEMA, "$", errors)
    if errors:
        return errors
    for i, ev in enumerate(data["traceEvents"]):
        ph = ev.get("ph")
        if ph == "X" and ("ts" not in ev or "dur" not in ev):
            errors.append(f"$.traceEvents[{i}]: complete span missing ts/dur")
        elif ph == "i" and "ts" not in ev:
            errors.append(f"$.traceEvents[{i}]: instant event missing ts")
    return errors


class ObsTrace:
    """A serialisable, mergeable snapshot of one or more observers."""

    __slots__ = ("counters", "gauges", "histograms", "records", "dropped")

    def __init__(
        self,
        *,
        counters: Optional[Dict[str, float]] = None,
        gauges: Optional[Dict[str, float]] = None,
        histograms: Optional[Dict[str, Histogram]] = None,
        records: Optional[List[ObsRecord]] = None,
        dropped: int = 0,
    ):
        self.counters: Dict[str, float] = counters if counters is not None else {}
        self.gauges: Dict[str, float] = gauges if gauges is not None else {}
        self.histograms: Dict[str, Histogram] = (
            histograms if histograms is not None else {}
        )
        self.records: List[ObsRecord] = records if records is not None else []
        self.dropped = dropped

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_observer(cls, observer: Observer) -> "ObsTrace":
        """Snapshot ``observer`` (shallow copies; records are shared)."""
        return cls(
            counters=dict(observer.counters),
            gauges=dict(observer.gauges),
            histograms=dict(observer.histograms),
            records=list(observer.records),
            dropped=observer.dropped,
        )

    @classmethod
    def merge(cls, traces: Iterable["ObsTrace"]) -> "ObsTrace":
        """Merge shard traces into one deterministic timeline.

        Records sort by ``(start, track, seq)``; counters and histogram
        buckets sum exactly; gauges merge by maximum (the only order-free
        choice for last-write metrics like queue depth, so merged gauges
        read as high-water marks).
        """
        merged = cls()
        for trace in traces:
            for name, value in trace.counters.items():
                merged.counters[name] = merged.counters.get(name, 0.0) + value
            for name, value in trace.gauges.items():
                current = merged.gauges.get(name)
                if current is None or value > current:
                    merged.gauges[name] = value
            for name, hist in trace.histograms.items():
                target = merged.histograms.get(name)
                if target is None:
                    target = merged.histograms[name] = Histogram(hist.bounds)
                target.merge_in(hist)
            merged.records.extend(trace.records)
            merged.dropped += trace.dropped
        merged.records.sort(key=lambda r: r.sort_key)
        return merged

    # ------------------------------------------------------------------ #
    # JSONL event log
    # ------------------------------------------------------------------ #
    def save_jsonl(self, path: str) -> None:
        """Write the trace as JSONL: schema line, records, metrics line."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"schema": SCHEMA}, sort_keys=True) + "\n")
            for record in self.records:
                fh.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
            metrics = {
                "counters": self.counters,
                "gauges": self.gauges,
                "histograms": {
                    name: hist.to_dict() for name, hist in self.histograms.items()
                },
                "dropped": self.dropped,
            }
            fh.write(json.dumps({"metrics": metrics}, sort_keys=True) + "\n")

    @classmethod
    def load_jsonl(cls, path: str) -> "ObsTrace":
        """Read a trace written by :meth:`save_jsonl`.

        A torn final line (a worker killed mid-dump) is tolerated and
        dropped; corruption anywhere else raises ``ValueError``.
        """
        trace = cls()
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break
                raise ValueError(f"{path}:{i + 1}: corrupt trace line") from None
            if "schema" in payload:
                if payload["schema"] != SCHEMA:
                    raise ValueError(
                        f"{path}: unsupported trace schema {payload['schema']!r}"
                    )
            elif "metrics" in payload:
                metrics = payload["metrics"]
                trace.counters.update(metrics.get("counters", {}))
                trace.gauges.update(metrics.get("gauges", {}))
                for name, d in metrics.get("histograms", {}).items():
                    trace.histograms[name] = Histogram.from_dict(d)
                trace.dropped += int(metrics.get("dropped", 0))
            else:
                trace.records.append(ObsRecord.from_dict(payload))
        return trace

    # ------------------------------------------------------------------ #
    # Chrome trace_event
    # ------------------------------------------------------------------ #
    def to_chrome(self) -> Dict[str, Any]:
        """Render as Chrome ``trace_event`` JSON (Perfetto-loadable).

        Each track becomes one synthetic thread of pid 1 (tids assigned in
        sorted track order, so the mapping is deterministic); span times map
        seconds to microseconds.
        """
        tracks = sorted({record.track for record in self.records})
        tids = {track: i + 1 for i, track in enumerate(tracks)}
        events: List[Dict[str, Any]] = [
            {
                "ph": "M",
                "pid": 1,
                "tid": tids[track],
                "name": "thread_name",
                "args": {"name": track},
            }
            for track in tracks
        ]
        for record in self.records:
            ev: Dict[str, Any] = {
                "pid": 1,
                "tid": tids[record.track],
                "cat": record.category,
                "name": record.name,
                "ts": s_to_us(record.start),
            }
            if record.kind == "span":
                ev["ph"] = "X"
                ev["dur"] = s_to_us(record.duration)
            else:
                ev["ph"] = "i"
                ev["s"] = "t"
            if record.args:
                ev["args"] = record.args
            events.append(ev)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    # ------------------------------------------------------------------ #
    # Prometheus text metrics
    # ------------------------------------------------------------------ #
    def to_prometheus(self) -> str:
        """Render counters/gauges/histograms in Prometheus text format."""
        out: List[str] = []
        for name in sorted(self.counters):
            metric = _prom_name(name)
            out.append(f"# TYPE {metric} counter")
            out.append(f"{metric} {_prom_value(self.counters[name])}")
        for name in sorted(self.gauges):
            metric = _prom_name(name)
            out.append(f"# TYPE {metric} gauge")
            out.append(f"{metric} {_prom_value(self.gauges[name])}")
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            metric = _prom_name(name)
            out.append(f"# TYPE {metric} histogram")
            cum = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cum += count
                out.append(f'{metric}_bucket{{le="{_prom_value(bound)}"}} {cum}')
            out.append(f'{metric}_bucket{{le="+Inf"}} {hist.total}')
            out.append(f"{metric}_sum {_prom_value(hist.sum)}")
            out.append(f"{metric}_count {hist.total}")
        return "\n".join(out) + "\n" if out else ""

    @classmethod
    def from_prometheus(cls, text: str) -> "ObsTrace":
        """Parse a :meth:`to_prometheus` dump back into metrics.

        The inverse of the text exporter up to what the format keeps:
        records are gone, metric names carry the sanitised Prometheus
        spelling (the ``repro_`` exporter prefix is stripped so a parsed
        trace re-exports byte-identically, minus min/max-clamp precision
        in :meth:`summarize`), and histogram min/max are approximated by the
        first/last occupied bucket edge (an overflow observation maps to
        ``+inf``).  Cumulative ``le`` bucket lines are de-cumulated back
        into per-bucket counts; a decreasing cumulative series or a
        bucket/``_count`` mismatch raises ``ValueError`` - the parse-back
        is the format's correctness check, not a lenient scraper.
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        types: Dict[str, str] = {}
        buckets: Dict[str, List[Tuple[float, int]]] = {}
        inf_buckets: Dict[str, int] = {}
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split()
                if len(parts) == 4 and parts[1] == "TYPE":
                    types[parts[2]] = parts[3]
                continue
            name_part, _, value_part = line.rpartition(" ")
            if not name_part:
                raise ValueError(f"prometheus line {lineno}: expected 'name value'")
            try:
                value = float(value_part)
            except ValueError:
                raise ValueError(
                    f"prometheus line {lineno}: bad value {value_part!r}"
                )
            if name_part.endswith("}") and '_bucket{le="' in name_part:
                metric, _, label = name_part.partition('_bucket{le="')
                metric = _strip_prom_prefix(metric)
                le = label[:-2]  # strip '"}'
                if le == "+Inf":
                    inf_buckets[metric] = int(value)
                else:
                    buckets.setdefault(metric, []).append((float(le), int(value)))
            elif name_part.endswith("_sum") and types.get(name_part[:-4]) == "histogram":
                sums[_strip_prom_prefix(name_part[:-4])] = value
            elif (
                name_part.endswith("_count")
                and types.get(name_part[:-6]) == "histogram"
            ):
                counts[_strip_prom_prefix(name_part[:-6])] = int(value)
            elif types.get(name_part) == "gauge":
                gauges[_strip_prom_prefix(name_part)] = value
            else:
                counters[_strip_prom_prefix(name_part)] = value
        histograms: Dict[str, Histogram] = {}
        for metric in sorted(set(buckets) | set(inf_buckets)):
            series = buckets.get(metric, [])
            bounds = [b for b, _ in series]
            if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
                raise ValueError(f"histogram {metric!r}: bucket bounds not increasing")
            total = inf_buckets.get(metric, series[-1][1] if series else 0)
            if metric in counts and counts[metric] != total:
                raise ValueError(
                    f"histogram {metric!r}: _count {counts[metric]} != "
                    f"+Inf bucket {total}"
                )
            hist = Histogram(bounds=bounds or (1.0,))
            prev = 0
            for i, (_bound, cum) in enumerate(series):
                if cum < prev:
                    raise ValueError(
                        f"histogram {metric!r}: cumulative bucket counts decrease"
                    )
                hist.counts[i] = cum - prev
                prev = cum
            if total < prev:
                raise ValueError(
                    f"histogram {metric!r}: +Inf bucket below last le bucket"
                )
            hist.counts[-1] = total - prev
            hist.total = total
            hist.sum = sums.get(metric, 0.0)
            if total > 0:
                occupied = [i for i, c in enumerate(hist.counts) if c > 0]
                hist.min = (
                    hist.bounds[occupied[0]]
                    if occupied[0] < len(hist.bounds)
                    else float("inf")
                )
                hist.max = (
                    hist.bounds[occupied[-1]]
                    if occupied[-1] < len(hist.bounds)
                    else float("inf")
                )
            histograms[metric] = hist
        return cls(counters=counters, gauges=gauges, histograms=histograms, records=[])

    # ------------------------------------------------------------------ #
    # human-readable summary
    # ------------------------------------------------------------------ #
    def summarize(self, *, top: int = 10) -> str:
        """The ``repro obs summarize`` report: top spans by cumulative
        time, per-category totals, counters, gauges, histogram quantiles."""
        lines: List[str] = []
        per_cat: Dict[str, Tuple[int, float]] = {}
        per_span: Dict[Tuple[str, str], Tuple[int, float]] = {}
        n_events = 0
        for record in self.records:
            if record.kind != "span":
                n_events += 1
                continue
            count, total = per_cat.get(record.category, (0, 0.0))
            per_cat[record.category] = (count + 1, total + record.duration)
            key = (record.category, record.name)
            count, total = per_span.get(key, (0, 0.0))
            per_span[key] = (count + 1, total + record.duration)

        lines.append(
            f"trace: {len(self.records)} records "
            f"({len(self.records) - n_events} spans, {n_events} events"
            + (f", {self.dropped} dropped)" if self.dropped else ")")
        )
        if per_cat:
            lines.append("")
            lines.append("span categories (count, cumulative time):")
            for cat in sorted(per_cat):
                count, total = per_cat[cat]
                lines.append(f"  {cat:<12} {count:>8}  {total:>12.6f} s")
        if per_span:
            ranked = sorted(
                per_span.items(), key=lambda item: (-item[1][1], item[0])
            )[:top]
            lines.append("")
            lines.append(f"top {len(ranked)} spans by cumulative time:")
            for (cat, name), (count, total) in ranked:
                lines.append(f"  {total:>12.6f} s  {count:>6}x  {cat}:{name}")
        if self.counters:
            lines.append("")
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:<40} {_prom_value(self.counters[name])}")
        if self.gauges:
            lines.append("")
            lines.append("gauges:")
            for name in sorted(self.gauges):
                lines.append(f"  {name:<40} {_prom_value(self.gauges[name])}")
        if self.histograms:
            lines.append("")
            lines.append("histograms (mean / p50 / p90 / p99):")
            for name in sorted(self.histograms):
                hist = self.histograms[name]
                lines.append(
                    f"  {name:<40} n={hist.total}"
                    f" mean={hist.mean:.6g}"
                    f" p50={hist.quantile(0.5):.6g}"
                    f" p90={hist.quantile(0.9):.6g}"
                    f" p99={hist.quantile(0.99):.6g}"
                )
        return "\n".join(lines) + "\n"


def _strip_prom_prefix(name: str) -> str:
    """Undo the exporter's ``repro_`` prefix (sanitisation is lossy)."""
    return name[len("repro_"):] if name.startswith("repro_") else name


def _prom_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus charset."""
    safe = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )
    if safe and safe[0].isdigit():
        safe = "_" + safe
    return "repro_" + safe


def _prom_value(value: float) -> str:
    """Render a float compactly (integral values lose the trailing .0)."""
    return str(int(value)) if float(value).is_integer() else repr(float(value))
