"""Declarative SLO evaluation over campaign artefacts and traces.

A spec is a small TOML-subset document (parsed here - the repo's Python
floor predates ``tomllib``) declaring objectives against the metric
catalog below.  ``repro obs slo spec.toml --records r.jsonl --trace
t.obs.jsonl`` evaluates every objective and exits non-zero on violation,
turning the chaos/failure studies' measured numbers into enforceable
gates.

Spec shape::

    name = "chaos-quick"
    description = "resilience objectives for the quick chaos study"

    [[objective]]
    name = "failover availability under gray faults"
    metric = "availability"
    mechanism = "failover"
    fault_family = "gray"
    intensity = "severe"
    min = 0.9

Record-based metrics (``--records``): ``availability``, ``mttr_mean``,
``mttr_p50``, ``p50_duration``, ``p99_duration``, ``goodput_retained``,
``byte_unavailability``, ``duplicate_waste_fraction``.  Rows are filtered
by the optional ``mechanism`` / ``fault_family`` / ``intensity`` /
``failure_mode`` keys first; chaos artefacts are evaluated through
:func:`repro.analysis.chaos.chaos_cells` (so the SLO numbers are, by
construction, the study's numbers) and failure artefacts through
:func:`repro.analysis.availability.availability_stats`.

Trace-based metrics (``--trace``): ``probe_overhead_fraction``,
``phase_fraction:<phase>``, ``tail_phase_fraction:<phase>`` (at the
objective's ``quantile``, default 0.99), ``counter:<name>``,
``gauge:<name>``, ``hist_p50:<name>``, ``hist_p99:<name>``,
``hist_mean:<name>``, ``hist_count:<name>``, ``span_total:<category>``,
``span_count:<category>``.

A NaN measurement fails its objective: "could not measure" must never
read as "within SLO".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.export import ObsTrace
from repro.obs.insight import PHASES, attribute_trace, phase_totals, tail_attribution

__all__ = [
    "SloObjective",
    "SloSpec",
    "SloResult",
    "SloReport",
    "parse_slo_spec",
    "load_slo_spec",
    "evaluate_slo",
    "render_slo",
]

_FILTER_KEYS = ("mechanism", "fault_family", "intensity", "failure_mode")
_RECORD_METRICS = frozenset(
    {
        "availability",
        "mttr_mean",
        "mttr_p50",
        "p50_duration",
        "p99_duration",
        "goodput_retained",
        "byte_unavailability",
        "duplicate_waste_fraction",
    }
)
_TRACE_METRIC_PREFIXES = (
    "counter:",
    "gauge:",
    "hist_p50:",
    "hist_p99:",
    "hist_mean:",
    "hist_count:",
    "span_total:",
    "span_count:",
    "phase_fraction:",
    "tail_phase_fraction:",
)


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective: a metric, filters, and bounds."""

    name: str
    metric: str
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    quantile: float = 0.99
    filters: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.min_value is None and self.max_value is None:
            raise ValueError(f"objective {self.name!r} needs a min and/or max bound")
        ok = (
            self.metric in _RECORD_METRICS
            or self.metric == "probe_overhead_fraction"
            or self.metric.startswith(_TRACE_METRIC_PREFIXES)
        )
        if not ok:
            raise ValueError(f"objective {self.name!r}: unknown metric {self.metric!r}")

    @property
    def needs_trace(self) -> bool:
        return self.metric == "probe_overhead_fraction" or self.metric.startswith(
            _TRACE_METRIC_PREFIXES
        )


@dataclass(frozen=True)
class SloSpec:
    """A parsed spec: header plus objectives, in file order."""

    name: str
    description: str
    objectives: Tuple[SloObjective, ...]


@dataclass(frozen=True)
class SloResult:
    """One evaluated objective."""

    objective: SloObjective
    measured: float
    passed: bool
    detail: str


@dataclass(frozen=True)
class SloReport:
    """All evaluated objectives of one spec run."""

    spec: SloSpec
    results: Tuple[SloResult, ...]

    @property
    def clean(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def violations(self) -> List[SloResult]:
        return [r for r in self.results if not r.passed]


# --------------------------------------------------------------------- #
# TOML-subset parsing
# --------------------------------------------------------------------- #


def _strip_comment(line: str) -> str:
    out: List[str] = []
    in_string = False
    for ch in line:
        if ch == '"':
            in_string = not in_string
        elif ch == "#" and not in_string:
            break
        out.append(ch)
    return "".join(out).strip()


def _parse_value(raw: str, *, lineno: int) -> Union[str, float, bool]:
    raw = raw.strip()
    if len(raw) >= 2 and raw.startswith('"') and raw.endswith('"'):
        return raw[1:-1]
    if raw == "true":
        return True
    if raw == "false":
        return False
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"slo spec line {lineno}: cannot parse value {raw!r}")


def parse_slo_spec(text: str) -> SloSpec:
    """Parse the TOML subset used by SLO specs (see module docstring).

    Supported: ``#`` comments, top-level ``key = value`` pairs, and
    ``[[objective]]`` array-of-tables with string / number / boolean
    values.  Anything else is a :class:`ValueError` naming the line.
    """
    header: Dict[str, Union[str, float, bool]] = {}
    tables: List[Dict[str, Union[str, float, bool]]] = []
    current: Optional[Dict[str, Union[str, float, bool]]] = None
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line)
        if not line:
            continue
        if line == "[[objective]]":
            current = {}
            tables.append(current)
            continue
        if line.startswith("["):
            raise ValueError(
                f"slo spec line {lineno}: only [[objective]] tables are supported"
            )
        if "=" not in line:
            raise ValueError(f"slo spec line {lineno}: expected key = value")
        key, _, raw_value = line.partition("=")
        key = key.strip()
        value = _parse_value(raw_value, lineno=lineno)
        (header if current is None else current)[key] = value
    objectives: List[SloObjective] = []
    for idx, table in enumerate(tables):
        filters = {
            k: str(table[k]) for k in _FILTER_KEYS if k in table
        }
        try:
            objectives.append(
                SloObjective(
                    name=str(table.get("name", f"objective-{idx + 1}")),
                    metric=str(table.get("metric", "")),
                    min_value=(
                        float(table["min"]) if "min" in table else None  # type: ignore[arg-type]
                    ),
                    max_value=(
                        float(table["max"]) if "max" in table else None  # type: ignore[arg-type]
                    ),
                    quantile=float(table.get("quantile", 0.99)),  # type: ignore[arg-type]
                    filters=filters,
                )
            )
        except (TypeError, ValueError) as exc:
            raise ValueError(f"slo spec objective {idx + 1}: {exc}")
    if not objectives:
        raise ValueError("slo spec declares no [[objective]] tables")
    return SloSpec(
        name=str(header.get("name", "slo")),
        description=str(header.get("description", "")),
        objectives=tuple(objectives),
    )


def load_slo_spec(path: str) -> SloSpec:
    """Parse the spec file at ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_slo_spec(fh.read())


# --------------------------------------------------------------------- #
# metric evaluation
# --------------------------------------------------------------------- #


def _filter_records(records: Sequence[object], filters: Dict[str, str]) -> List[object]:
    out: List[object] = []
    for r in records:
        if all(str(getattr(r, k, None)) == v for k, v in filters.items()):
            out.append(r)
    return out


def _finite_mean(values: Sequence[float]) -> float:
    finite = [v for v in values if math.isfinite(v)]
    return math.fsum(finite) / len(finite) if finite else math.nan


def _nearest_rank(values: Sequence[float], q: float) -> float:
    finite = sorted(v for v in values if math.isfinite(v))
    if not finite:
        return math.nan
    rank = max(0, min(len(finite) - 1, math.ceil(q * len(finite)) - 1))
    return finite[rank]


def _chaos_cell_value(
    all_records: Sequence[object], objective: SloObjective
) -> Tuple[float, str]:
    """Cell statistic via :func:`chaos_cells` - the study's own numbers."""
    from repro.analysis.chaos import chaos_cells

    from repro.trace.records import ChaosRecord

    rows = [r for r in all_records if isinstance(r, ChaosRecord)]
    cells = chaos_cells(rows)
    f = objective.filters
    matching = [
        stats
        for (family, intensity, mechanism), stats in cells.items()
        if f.get("fault_family", family) == family
        and f.get("intensity", intensity) == intensity
        and f.get("mechanism", mechanism) == mechanism
    ]
    if not matching:
        return math.nan, "no chaos cell matches the filters"
    attr = {
        "availability": "availability",
        "mttr_mean": "mean_ttr",
        "mttr_p50": "p50_ttr",
        "p50_duration": "p50_duration",
        "p99_duration": "p99_duration",
        "goodput_retained": "goodput_retained",
    }[objective.metric]
    values = [float(getattr(s, attr)) for s in matching]
    if len(values) == 1:
        return values[0], f"1 cell ({matching[0].n} rows)"
    return _finite_mean(values), f"mean over {len(values)} cells"


def _record_metric(
    records: Sequence[object], objective: SloObjective
) -> Tuple[float, str]:
    from repro.analysis.availability import (
        availability_stats,
        byte_unavailability,
        duplicate_waste_fraction,
    )
    from repro.trace.records import ChaosRecord, FailureRecord

    rows = _filter_records(records, objective.filters)
    if not rows:
        return math.nan, "no records match the filters"
    metric = objective.metric

    if metric == "byte_unavailability":
        return byte_unavailability(rows), f"{len(rows)} rows"
    if metric == "duplicate_waste_fraction":
        return duplicate_waste_fraction(rows), f"{len(rows)} rows"

    chaos = all(isinstance(r, ChaosRecord) for r in rows)
    if chaos and metric in (
        "availability",
        "mttr_mean",
        "mttr_p50",
        "p50_duration",
        "p99_duration",
        "goodput_retained",
    ):
        return _chaos_cell_value(records, objective)

    if metric == "goodput_retained":
        return math.nan, "goodput_retained needs a chaos artefact"

    failure = all(isinstance(r, FailureRecord) for r in rows)
    if failure:
        stats = availability_stats(rows)  # type: ignore[arg-type]
        value = {
            "availability": stats.availability,
            "mttr_mean": stats.mean_ttr,
            "mttr_p50": stats.median_ttr,
            "p50_duration": _nearest_rank(
                [r.selected_duration for r in rows if not r.aborted], 0.5  # type: ignore[attr-defined]
            ),
            "p99_duration": _nearest_rank(
                [r.selected_duration for r in rows if not r.aborted], 0.99  # type: ignore[attr-defined]
            ),
        }[metric]
        return value, f"{stats.n_sessions} rows"

    # Generic rows: best-effort with the availability bit / durations.
    if metric == "availability":
        bits = [r for r in rows if hasattr(r, "available")]
        if not bits:
            return math.nan, "rows carry no availability bit"
        frac = sum(1 for r in bits if getattr(r, "available")) / len(bits)
        return frac, f"{len(bits)} rows"
    if metric in ("mttr_mean", "mttr_p50"):
        ttrs = [
            float(getattr(r, "time_to_recover", math.nan))
            for r in rows
        ]
        value = _finite_mean(ttrs) if metric == "mttr_mean" else _nearest_rank(ttrs, 0.5)
        return value, f"{len(rows)} rows"
    durations = [
        float(getattr(r, "selected_duration", math.nan))
        for r in rows
        if not getattr(r, "aborted", False)
    ]
    q = 0.5 if metric == "p50_duration" else 0.99
    return _nearest_rank(durations, q), f"{len(durations)} finished rows"


def _trace_metric(trace: ObsTrace, objective: SloObjective) -> Tuple[float, str]:
    metric = objective.metric
    kind, _, arg = metric.partition(":")
    if kind == "counter":
        return trace.counters.get(arg, math.nan), "counter"
    if kind == "gauge":
        return trace.gauges.get(arg, math.nan), "gauge"
    if kind in ("hist_p50", "hist_p99", "hist_mean", "hist_count"):
        hist = trace.histograms.get(arg)
        if hist is None:
            return math.nan, f"histogram {arg!r} absent"
        if kind == "hist_mean":
            return hist.mean, f"{hist.total} observations"
        if kind == "hist_count":
            return float(hist.total), "count"
        return hist.quantile(0.5 if kind == "hist_p50" else 0.99), (
            f"{hist.total} observations"
        )
    if kind in ("span_total", "span_count"):
        n, total = 0, 0.0
        for rec in trace.records:
            if rec.kind == "span" and rec.category == arg:
                n += 1
                total += (rec.end if rec.end is not None else rec.start) - rec.start
        return (float(n) if kind == "span_count" else total), f"{n} spans"
    # Phase metrics share one attribution pass.
    sessions = attribute_trace(trace)
    if not sessions:
        return math.nan, "trace has no session spans"
    if metric == "probe_overhead_fraction":
        totals = phase_totals(sessions)
        grand = math.fsum(totals.values())
        if grand <= 0.0:
            return math.nan, "zero total session time"
        return (totals["probe"] + totals["reprobe"]) / grand, (
            f"{len(sessions)} sessions"
        )
    if kind == "phase_fraction":
        if arg not in PHASES:
            return math.nan, f"unknown phase {arg!r}"
        totals = phase_totals(sessions)
        grand = math.fsum(totals.values())
        if grand <= 0.0:
            return math.nan, "zero total session time"
        return totals[arg] / grand, f"{len(sessions)} sessions"
    if kind == "tail_phase_fraction":
        if arg not in PHASES:
            return math.nan, f"unknown phase {arg!r}"
        tail = tail_attribution(sessions, objective.quantile)
        return tail.fractions.get(arg, math.nan), (
            f"{tail.n_tail} tail sessions (q={objective.quantile:g})"
        )
    return math.nan, f"unknown metric {metric!r}"


def evaluate_slo(
    spec: SloSpec,
    *,
    records: Optional[Sequence[object]] = None,
    trace: Optional[ObsTrace] = None,
) -> SloReport:
    """Evaluate every objective; missing inputs fail their objectives."""
    results: List[SloResult] = []
    for obj in spec.objectives:
        if obj.needs_trace:
            if trace is None:
                results.append(
                    SloResult(obj, math.nan, False, "needs --trace, none given")
                )
                continue
            measured, detail = _trace_metric(trace, obj)
        else:
            if records is None:
                results.append(
                    SloResult(obj, math.nan, False, "needs --records, none given")
                )
                continue
            measured, detail = _record_metric(records, obj)
        if not math.isfinite(measured):
            results.append(SloResult(obj, measured, False, detail))
            continue
        passed = True
        if obj.min_value is not None and measured < obj.min_value:
            passed = False
        if obj.max_value is not None and measured > obj.max_value:
            passed = False
        results.append(SloResult(obj, measured, passed, detail))
    return SloReport(spec=spec, results=tuple(results))


def _bounds(obj: SloObjective) -> str:
    parts = []
    if obj.min_value is not None:
        parts.append(f">= {obj.min_value:g}")
    if obj.max_value is not None:
        parts.append(f"<= {obj.max_value:g}")
    return " and ".join(parts)


def render_slo(report: SloReport) -> str:
    """Human-readable pass/fail table (the ``repro obs slo`` output)."""
    lines: List[str] = []
    lines.append(f"SLO evaluation: {report.spec.name}")
    if report.spec.description:
        lines.append(report.spec.description)
    lines.append("=" * 72)
    for res in report.results:
        obj = res.objective
        status = "PASS" if res.passed else "FAIL"
        measured = f"{res.measured:.4g}" if math.isfinite(res.measured) else "n/a"
        filt = (
            " [" + ", ".join(f"{k}={v}" for k, v in sorted(obj.filters.items())) + "]"
            if obj.filters
            else ""
        )
        lines.append(
            f"  {status}  {obj.name}: {obj.metric}{filt} = {measured} "
            f"(want {_bounds(obj)}; {res.detail})"
        )
    n_fail = len(report.violations)
    lines.append(
        "all objectives met"
        if report.clean
        else f"{n_fail} of {len(report.results)} objectives violated"
    )
    return "\n".join(lines)
