"""Campaign health report: one self-contained HTML page per campaign.

``repro obs report trace.obs.jsonl -o health.html`` renders, without any
external assets or JavaScript:

* headline numbers (sessions, total sim time, outcome counters);
* a phase-attribution stacked bar chart (per session group) plus the
  p50/p99 tail attribution, via :mod:`repro.obs.insight`;
* a sparkline per histogram (bucket-count profile with p50/p99);
* the SLO pass/fail table when a spec was evaluated alongside.

Everything is derived from sim-time trace content and rendered with
deterministic iteration orders, so the report bytes are a pure function
of its inputs - two identical-seed campaigns produce identical reports
(the repo-wide byte-identity bar applies to diagnostics too).
"""

from __future__ import annotations

import math
from html import escape
from typing import Dict, List, Optional, Sequence

from repro.obs.export import ObsTrace
from repro.obs.insight import (
    PHASES,
    SessionPhases,
    attribute_trace,
    phase_totals,
    tail_attribution,
)
from repro.obs.slo import SloReport
from repro.util.svg import svg_sparkline, svg_stacked_bars

__all__ = ["render_report"]

_STYLE = """
body { font-family: sans-serif; margin: 2em auto; max-width: 60em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; }
td, th { border: 1px solid #ccc; padding: 4px 10px; text-align: right; }
th { background: #f2f2f2; } td.l, th.l { text-align: left; }
.pass { color: #007a33; font-weight: bold; } .fail { color: #b00020; font-weight: bold; }
.muted { color: #777; }
"""


def _fmt(v: float, digits: int = 3) -> str:
    if not math.isfinite(v):
        return "n/a"
    return f"{v:.{digits}f}"


def _pct(v: float) -> str:
    return "n/a" if not math.isfinite(v) else f"{100.0 * v:.1f}%"


def _group_label(s: SessionPhases) -> str:
    if s.stripe_k >= 2:
        return f"stripe-k{s.stripe_k}"
    return s.outcome or "session"


def _phase_chart(sessions: Sequence[SessionPhases]) -> str:
    groups: Dict[str, List[SessionPhases]] = {}
    for s in sessions:
        groups.setdefault(_group_label(s), []).append(s)
    labels = sorted(groups)
    layers: Dict[str, List[float]] = {
        p: [phase_totals(groups[g])[p] for g in labels] for p in PHASES
    }
    # Drop all-zero layers so the legend only names phases that occurred.
    layers = {p: vals for p, vals in layers.items() if any(v > 0.0 for v in vals)}
    if not labels or not layers:
        return '<p class="muted">no session spans in this trace</p>'
    return svg_stacked_bars(
        labels,
        {p: layers[p] for p in PHASES if p in layers},
        title="session time by phase",
        xlabel="session group",
        ylabel="seconds (sim)",
    )


def _headline_rows(trace: ObsTrace, sessions: Sequence[SessionPhases]) -> List[str]:
    total = math.fsum(s.duration for s in sessions)
    rows = [
        ("sessions", f"{len(sessions)}"),
        ("total session time", f"{_fmt(total)} s"),
        ("trace records", f"{len(trace.records)}"),
        ("records dropped", f"{trace.dropped}"),
    ]
    outcomes = sorted(
        (name, value)
        for name, value in trace.counters.items()
        if name.startswith("session.outcome.")
    )
    for name, value in outcomes:
        rows.append((name[len("session.outcome."):], f"{value:g}"))
    return [
        f'<tr><td class="l">{escape(k)}</td><td>{escape(v)}</td></tr>'
        for k, v in rows
    ]


def _tail_table(sessions: Sequence[SessionPhases]) -> str:
    parts = ['<table><tr><th class="l">quantile</th>']
    parts.extend(f"<th>{escape(p)}</th>" for p in PHASES)
    parts.append("</tr>")
    for q in (0.5, 0.99):
        tail = tail_attribution(sessions, q)
        parts.append(f'<tr><td class="l">p{100 * q:g} ({tail.n_tail} sessions)</td>')
        parts.extend(
            f"<td>{escape(_pct(tail.fractions.get(p, math.nan)))}</td>" for p in PHASES
        )
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def _histogram_section(trace: ObsTrace) -> str:
    if not trace.histograms:
        return '<p class="muted">no histograms in this trace</p>'
    parts = [
        '<table><tr><th class="l">histogram</th><th>count</th><th>mean</th>'
        "<th>p50</th><th>p99</th><th>profile</th></tr>"
    ]
    for name in sorted(trace.histograms):
        hist = trace.histograms[name]
        spark = svg_sparkline([float(c) for c in hist.counts])
        parts.append(
            f'<tr><td class="l">{escape(name)}</td><td>{hist.total}</td>'
            f"<td>{escape(_fmt(hist.mean, 4))}</td>"
            f"<td>{escape(_fmt(hist.quantile(0.5), 4))}</td>"
            f"<td>{escape(_fmt(hist.quantile(0.99), 4))}</td>"
            f"<td>{spark}</td></tr>"
        )
    parts.append("</table>")
    return "".join(parts)


def _slo_section(slo: SloReport) -> str:
    parts = [
        f"<h2>SLO: {escape(slo.spec.name)}</h2>",
        '<table><tr><th class="l">objective</th><th class="l">metric</th>'
        "<th>measured</th><th class=\"l\">bounds</th><th>status</th></tr>",
    ]
    for res in slo.results:
        obj = res.objective
        bounds = []
        if obj.min_value is not None:
            bounds.append(f"&ge; {obj.min_value:g}")
        if obj.max_value is not None:
            bounds.append(f"&le; {obj.max_value:g}")
        filt = (
            " [" + ", ".join(f"{k}={v}" for k, v in sorted(obj.filters.items())) + "]"
            if obj.filters
            else ""
        )
        status = (
            '<span class="pass">PASS</span>'
            if res.passed
            else '<span class="fail">FAIL</span>'
        )
        measured = _fmt(res.measured, 4) if math.isfinite(res.measured) else "n/a"
        parts.append(
            f'<tr><td class="l">{escape(obj.name)}</td>'
            f'<td class="l">{escape(obj.metric + filt)}</td>'
            f"<td>{escape(measured)}</td>"
            f'<td class="l">{" and ".join(bounds)}</td>'
            f"<td>{status}</td></tr>"
        )
    parts.append("</table>")
    verdict = (
        '<p class="pass">all objectives met</p>'
        if slo.clean
        else f'<p class="fail">{len(slo.violations)} objective(s) violated</p>'
    )
    parts.append(verdict)
    return "".join(parts)


def render_report(
    trace: ObsTrace,
    *,
    title: str = "campaign health",
    slo: Optional[SloReport] = None,
) -> str:
    """Render the self-contained HTML health report for ``trace``."""
    sessions = attribute_trace(trace)
    parts: List[str] = []
    parts.append("<!DOCTYPE html>")
    parts.append('<html lang="en"><head><meta charset="utf-8"/>')
    parts.append(f"<title>{escape(title)}</title>")
    parts.append(f"<style>{_STYLE}</style></head><body>")
    parts.append(f"<h1>{escape(title)}</h1>")
    parts.append("<h2>Headline</h2><table>")
    parts.extend(_headline_rows(trace, sessions))
    parts.append("</table>")
    parts.append("<h2>Critical-path attribution</h2>")
    parts.append(_phase_chart(sessions))
    if sessions:
        parts.append("<h3>tail attribution</h3>")
        parts.append(_tail_table(sessions))
    parts.append("<h2>Histograms</h2>")
    parts.append(_histogram_section(trace))
    if slo is not None:
        parts.append(_slo_section(slo))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
