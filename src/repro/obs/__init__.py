"""repro.obs: unified tracing, metrics and profiling layer.

The observability substrate shared by the simulation kernel, the TCP
engine, the transfer/resilience core, the campaign runner and the perf
harness.  See :mod:`repro.obs.core` for the instrumentation primitives and
:mod:`repro.obs.export` for the exporters (JSONL, Chrome ``trace_event``,
Prometheus text).

On top of the substrate sits the insight layer: critical-path phase
attribution (:mod:`repro.obs.insight`), cross-run trace diffing
(:mod:`repro.obs.diff`), declarative SLO evaluation
(:mod:`repro.obs.slo`) and the campaign health report
(:mod:`repro.obs.report`).
"""

from repro.obs.core import (
    DEFAULT_TRACK,
    OBS_DIR_ENV_VAR,
    OBS_ENV_VAR,
    SCHEMA,
    Histogram,
    Observer,
    ObsRecord,
    global_observer,
    install_observer,
    observe_enabled_from_env,
    reset_global_observer,
    shard_directory_from_env,
)
from repro.obs.diff import DiffTolerances, TraceDiff, diff_traces, render_diff
from repro.obs.export import ObsTrace, validate_chrome_trace
from repro.obs.insight import (
    PHASES,
    SessionPhases,
    TailAttribution,
    attribute_trace,
    render_insight,
    tail_attribution,
)
from repro.obs.report import render_report
from repro.obs.slo import (
    SloObjective,
    SloReport,
    SloSpec,
    evaluate_slo,
    load_slo_spec,
    parse_slo_spec,
    render_slo,
)

__all__ = [
    "DEFAULT_TRACK",
    "PHASES",
    "DiffTolerances",
    "SessionPhases",
    "SloObjective",
    "SloReport",
    "SloSpec",
    "TailAttribution",
    "TraceDiff",
    "attribute_trace",
    "diff_traces",
    "evaluate_slo",
    "load_slo_spec",
    "parse_slo_spec",
    "render_diff",
    "render_insight",
    "render_report",
    "render_slo",
    "tail_attribution",
    "OBS_DIR_ENV_VAR",
    "OBS_ENV_VAR",
    "SCHEMA",
    "Histogram",
    "Observer",
    "ObsRecord",
    "ObsTrace",
    "global_observer",
    "install_observer",
    "observe_enabled_from_env",
    "reset_global_observer",
    "shard_directory_from_env",
    "validate_chrome_trace",
]
