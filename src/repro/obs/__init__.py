"""repro.obs: unified tracing, metrics and profiling layer.

The observability substrate shared by the simulation kernel, the TCP
engine, the transfer/resilience core, the campaign runner and the perf
harness.  See :mod:`repro.obs.core` for the instrumentation primitives and
:mod:`repro.obs.export` for the exporters (JSONL, Chrome ``trace_event``,
Prometheus text).
"""

from repro.obs.core import (
    DEFAULT_TRACK,
    OBS_DIR_ENV_VAR,
    OBS_ENV_VAR,
    SCHEMA,
    Histogram,
    Observer,
    ObsRecord,
    global_observer,
    install_observer,
    observe_enabled_from_env,
    reset_global_observer,
    shard_directory_from_env,
)
from repro.obs.export import ObsTrace, validate_chrome_trace

__all__ = [
    "DEFAULT_TRACK",
    "OBS_DIR_ENV_VAR",
    "OBS_ENV_VAR",
    "SCHEMA",
    "Histogram",
    "Observer",
    "ObsRecord",
    "ObsTrace",
    "global_observer",
    "install_observer",
    "observe_enabled_from_env",
    "reset_global_observer",
    "shard_directory_from_env",
    "validate_chrome_trace",
]
