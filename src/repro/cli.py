"""Command-line interface: run campaigns, render artefacts, browse catalogues.

Usage (also available as ``python -m repro``):

.. code-block:: bash

    repro section2 --reps 30 --out s2.jsonl            # the §2-3 campaign
    repro section4 --reps 40 --set-sizes 1,4,10,35 --out s4.jsonl
    repro failures --quick --out fail.jsonl             # availability study
    repro section2 --reps 30 --out s2.jsonl --obs       # + obs trace
    repro obs summarize s2.jsonl.obs.jsonl              # span/counter summary
    repro obs chrome s2.jsonl.obs.jsonl                 # Perfetto-loadable JSON
    repro report s2.jsonl --artifact fig1 table1 headline
    repro report s4.jsonl --artifact fig6 table3 --client Duke
    repro catalog                                       # Tables IV & V
    repro lint src tests benchmarks                     # QA-* static linter
    repro lint --rules                                  # rule catalogue
    repro check src --baseline qa-baseline.json         # QA-F flow analyzer
    repro check src --sarif findings.sarif              # SARIF 2.1 output
    repro selfcheck                                     # sanitizer battery
    repro perf --out BENCH_engine.json                  # engine benchmarks
    repro perf --quick --baseline BENCH_engine.json     # regression check
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

from repro.analysis import (
    full_report,
    headline_stats,
    improvement_histogram,
    improvement_vs_throughput,
    indirect_throughput_series,
    penalty_table,
    per_client_histograms,
    random_set_curves,
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_headline,
    render_table1,
    render_table2,
    render_table3,
    top_relays_per_client,
    total_utilization_stats,
    utilization_vs_improvement,
)
from repro.analysis.availability import render_availability
from repro.chaos.faults import FAULT_FAMILIES, FAULT_INTENSITIES
from repro.qa.lint import iter_python_files, lint_paths
from repro.qa.rules import INVARIANTS, RULES
from repro.runner import (
    CheckpointError,
    RunnerError,
    UnitExecutionError,
    execute_plan,
)
from repro.trace.store import TraceStore
from repro.util.tables import render_table
from repro.workloads.experiment import Section2Study, Section4Study
from repro.workloads.planetlab import (
    CLIENT_CATALOG,
    SECTION4_RELAY_CATALOG,
    RELAY_CATALOG,
    SITES,
)
from repro.workloads.scenario import Scenario, ScenarioSpec

__all__ = ["main", "build_parser"]

#: Artefact name -> renderer over a loaded store.
_ARTIFACTS = (
    "all",
    "headline",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "table1",
    "table2",
    "table3",
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Performance Analysis of Indirect Routing' "
            "(IPPS 2007): run simulated campaigns and regenerate the "
            "paper's tables and figures."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    s2 = sub.add_parser("section2", help="run the §2-3 campaign (22 clients)")
    s2.add_argument("--reps", type=int, default=30, help="transfers per client")
    s2.add_argument("--seed", type=int, default=2007)
    s2.add_argument(
        "--sites", default="eBay", help="comma-separated sites (default: eBay)"
    )
    s2.add_argument("--clients", default=None, help="comma-separated client subset")
    s2.add_argument("--out", required=True, help="output JSONL path")
    _add_runner_args(s2)

    s4 = sub.add_parser("section4", help="run the §4 random-set sweep")
    s4.add_argument("--reps", type=int, default=40, help="transfers per set size")
    s4.add_argument("--seed", type=int, default=2007)
    s4.add_argument(
        "--set-sizes",
        default="1,2,4,6,10,16,24,35",
        help="comma-separated random-set sizes",
    )
    s4.add_argument("--out", required=True, help="output JSONL path")
    _add_runner_args(s4)

    fl = sub.add_parser(
        "failures",
        help="run the availability study (resilient protocol under outages)",
    )
    fl.add_argument(
        "--reps",
        type=int,
        default=16,
        help="transfers per client (cycling healthy/link/node/both injection)",
    )
    fl.add_argument("--seed", type=int, default=2007)
    fl.add_argument("--site", default="eBay", help="target site (default: eBay)")
    fl.add_argument("--clients", default=None, help="comma-separated client subset")
    fl.add_argument(
        "--interval",
        type=float,
        default=360.0,
        help="seconds between a client's transfer starts (default 360)",
    )
    fl.add_argument(
        "--link-mtbf", type=float, default=900.0,
        help="mean time between direct-link flaps, seconds (default 900)",
    )
    fl.add_argument(
        "--link-duration", type=float, default=150.0,
        help="mean link-flap length, seconds (default 150)",
    )
    fl.add_argument(
        "--node-mtbf", type=float, default=1800.0,
        help="mean time between relay crashes, seconds (default 1800)",
    )
    fl.add_argument(
        "--node-duration", type=float, default=240.0,
        help="mean relay-crash length, seconds (default 240)",
    )
    fl.add_argument(
        "--quick",
        action="store_true",
        help="tiny deterministic campaign (2 clients x 8 reps) for smoke runs",
    )
    fl.add_argument("--out", required=True, help="output JSONL path")
    _add_runner_args(fl)

    mh = sub.add_parser(
        "mhttp",
        help="run the mHTTP striping study (select-one vs stripe-k)",
    )
    mh.add_argument(
        "--reps",
        type=int,
        default=8,
        help="repetition slots per client (cycling healthy/node-crash injection)",
    )
    mh.add_argument("--seed", type=int, default=2007)
    mh.add_argument("--site", default="eBay", help="target site (default: eBay)")
    mh.add_argument("--clients", default=None, help="comma-separated client subset")
    mh.add_argument(
        "--ks",
        default="2,3,4",
        help="comma-separated stripe widths, paths including direct (default 2,3,4)",
    )
    mh.add_argument(
        "--interval",
        type=float,
        default=360.0,
        help="seconds between a client's repetition slots (default 360)",
    )
    mh.add_argument(
        "--block-kb", type=float, default=512.0,
        help="stripe block size in kB (default 512)",
    )
    mh.add_argument(
        "--window", type=int, default=2,
        help="per-path in-flight block window (default 2)",
    )
    mh.add_argument(
        "--crash-duration", type=float, default=240.0,
        help="node-mode relay outage length, seconds (default 240)",
    )
    mh.add_argument(
        "--quick",
        action="store_true",
        help="tiny deterministic campaign (2 clients x 2 reps, k=2) for smoke runs",
    )
    mh.add_argument("--out", required=True, help="output JSONL path")
    _add_runner_args(mh)

    ch = sub.add_parser(
        "chaos",
        help="run the chaos resilience study (fault injection x mechanism)",
    )
    ch.add_argument(
        "--reps",
        type=int,
        default=6,
        help="repetition slots per client (each runs the full fault grid)",
    )
    ch.add_argument("--seed", type=int, default=2007)
    ch.add_argument("--site", default="eBay", help="target site (default: eBay)")
    ch.add_argument("--clients", default=None, help="comma-separated client subset")
    ch.add_argument(
        "--k",
        type=int,
        default=3,
        help="paths per session including direct (default 3)",
    )
    ch.add_argument(
        "--interval",
        type=float,
        default=360.0,
        help="seconds between a client's repetition slots (default 360)",
    )
    ch.add_argument(
        "--families",
        default=",".join(FAULT_FAMILIES),
        help="comma-separated fault families to inject "
        f"(default {','.join(FAULT_FAMILIES)})",
    )
    ch.add_argument(
        "--intensities",
        default=",".join(FAULT_INTENSITIES),
        help="comma-separated fault intensities "
        f"(default {','.join(FAULT_INTENSITIES)})",
    )
    ch.add_argument(
        "--quick",
        action="store_true",
        help="tiny deterministic campaign (2 clients x 1 rep, gray+correlated "
        "at severe) for smoke runs",
    )
    ch.add_argument("--out", required=True, help="output JSONL path")
    _add_runner_args(ch)

    sc = sub.add_parser(
        "scale",
        help="run the population-scale study (100k clients racing probes)",
    )
    sc.add_argument(
        "--clients",
        type=int,
        default=100_000,
        help="concurrent clients per wave (default 100000)",
    )
    sc.add_argument(
        "--waves",
        type=int,
        default=1,
        help="independent waves, each its own simulation (default 1)",
    )
    sc.add_argument("--seed", type=int, default=2007)
    sc.add_argument("--site", default="eBay", help="target site (default: eBay)")
    sc.add_argument(
        "--relays", type=int, default=4, help="deployed relays (default 4)"
    )
    sc.add_argument(
        "--engine",
        choices=("vector", "classic"),
        default="vector",
        help="population engine: vectorized SoA core or the per-object "
        "oracle (classic is quadratic; cross-checks only)",
    )
    sc.add_argument(
        "--quick",
        action="store_true",
        help="cap the population at 10k clients for smoke runs",
    )
    sc.add_argument("--out", required=True, help="output JSONL path")
    _add_runner_args(sc)

    rep = sub.add_parser("report", help="render artefacts from a saved store")
    rep.add_argument("store", help="JSONL store written by section2/section4")
    rep.add_argument(
        "--artifact",
        nargs="+",
        choices=_ARTIFACTS,
        default=["headline"],
        help="artefacts to render",
    )
    rep.add_argument(
        "--client", default="Duke", help="client for table3 (default: Duke)"
    )

    sub.add_parser("catalog", help="print the PlanetLab node catalogues")

    lint = sub.add_parser(
        "lint",
        help="run the project QA-* linter (determinism / units / sim safety)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--no-hints", action="store_true", help="omit fix hints from findings"
    )
    lint.add_argument(
        "--rules",
        action="store_true",
        help="print the rule and invariant catalogues and exit",
    )

    check = sub.add_parser(
        "check",
        help="run the whole-program QA-F flow analyzer (determinism / spawn safety)",
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    check.add_argument(
        "--baseline",
        metavar="FILE",
        help="accepted-findings baseline; only findings beyond it fail the run",
    )
    check.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write a baseline accepting every current finding, then exit",
    )
    check.add_argument(
        "--sarif",
        metavar="FILE",
        help="also write findings as SARIF 2.1 to FILE ('-' for stdout)",
    )
    check.add_argument(
        "--no-hints", action="store_true", help="omit fix hints from findings"
    )

    sub.add_parser(
        "selfcheck",
        help="prove every runtime invariant check fires (sanitizer battery)",
    )

    perf = sub.add_parser(
        "perf",
        help="run engine hot-path benchmarks (optimised vs seed engine path)",
    )
    perf.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads for CI smoke runs (noisier numbers)",
    )
    perf.add_argument(
        "--only",
        default=None,
        metavar="NAMES",
        help="comma-separated bench subset (see repro.perf.BENCHES)",
    )
    perf.add_argument(
        "--out",
        default="BENCH_engine.json",
        metavar="FILE",
        help="write the JSON report here (default: BENCH_engine.json)",
    )
    perf.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="compare against a stored report; exit 1 on regression",
    )
    perf.add_argument(
        "--tolerance",
        type=float,
        default=None,
        metavar="FRAC",
        help="relative slowdown counted as a regression (default 0.25)",
    )
    perf.add_argument(
        "--obs",
        action="store_true",
        help="instrument each bench; adds an obs_summary block per bench "
        "to the JSON report (numbers include instrumentation overhead)",
    )

    obs = sub.add_parser(
        "obs",
        help="inspect obs traces written by --obs campaign runs",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summ = obs_sub.add_parser(
        "summarize",
        help="print span/counter/histogram summary of a trace",
    )
    summ.add_argument("trace", help="obs JSONL trace path")
    summ.add_argument(
        "--top",
        type=int,
        default=10,
        help="span names listed in the cumulative-time table (default 10)",
    )
    chrome = obs_sub.add_parser(
        "chrome",
        help="convert a trace to Chrome trace_event JSON (Perfetto-loadable)",
    )
    chrome.add_argument("trace", help="obs JSONL trace path")
    chrome.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="output path (default: <trace>.chrome.json)",
    )
    metrics = obs_sub.add_parser(
        "metrics",
        help="dump counters/gauges/histograms as Prometheus-style text",
    )
    metrics.add_argument("trace", help="obs JSONL trace path")
    metrics.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="output path (default: stdout)",
    )
    phases = obs_sub.add_parser(
        "phases",
        help="critical-path attribution: decompose each session into "
        "probe/stall/backoff/straggle/transfer phases",
    )
    phases.add_argument("trace", help="obs JSONL trace path")
    phases.add_argument(
        "--quantile",
        type=float,
        default=0.99,
        help="tail quantile for the attribution summary (default 0.99)",
    )
    diff = obs_sub.add_parser(
        "diff",
        help="align two traces and report drift; exit 0 clean, 1 drift "
        "(wall-clock runner records are reported but never gated)",
    )
    diff.add_argument("trace_a", help="baseline obs JSONL trace")
    diff.add_argument("trace_b", help="candidate obs JSONL trace")
    diff.add_argument(
        "--duration-rel",
        type=float,
        default=0.0,
        help="relative tolerance on per-category span durations (default 0)",
    )
    diff.add_argument(
        "--duration-abs",
        type=float,
        default=0.0,
        help="absolute tolerance (seconds) on span durations (default 0)",
    )
    diff.add_argument(
        "--counter-rel",
        type=float,
        default=0.0,
        help="relative tolerance on counters/gauges (default 0)",
    )
    diff.add_argument(
        "--counter-abs",
        type=float,
        default=0.0,
        help="absolute tolerance on counters/gauges (default 0)",
    )
    diff.add_argument(
        "--quantile-rel",
        type=float,
        default=0.0,
        help="relative tolerance on histogram sum/p50/p99 (default 0)",
    )
    diff.add_argument(
        "--include-wallclock",
        action="store_true",
        help="gate executor-domain (wall-clock) records and runner.* "
        "metrics too (nondeterministic across runs; off by default)",
    )
    diff.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="also list matching quantities",
    )
    slo = obs_sub.add_parser(
        "slo",
        help="evaluate a declarative SLO spec against a campaign artefact "
        "and/or obs trace; exit 0 pass, 1 violation",
    )
    slo.add_argument("spec", help="SLO spec path (TOML subset; see DESIGN.md §14)")
    slo.add_argument(
        "--records",
        default=None,
        metavar="FILE",
        help="campaign artefact JSONL (chaos/failures/mhttp rows)",
    )
    slo.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="obs JSONL trace for trace-derived metrics",
    )
    health = obs_sub.add_parser(
        "report",
        help="render a self-contained HTML campaign health report "
        "(phase attribution, histogram sparklines, SLO table)",
    )
    health.add_argument("trace", help="obs JSONL trace path")
    health.add_argument(
        "--out",
        "-o",
        default=None,
        metavar="FILE",
        help="output path (default: <trace>.health.html)",
    )
    health.add_argument(
        "--slo",
        default=None,
        metavar="FILE",
        help="SLO spec to evaluate and include in the report",
    )
    health.add_argument(
        "--records",
        default=None,
        metavar="FILE",
        help="campaign artefact JSONL for record-based SLO metrics",
    )
    health.add_argument(
        "--title",
        default="campaign health",
        help='report title (default "campaign health")',
    )
    return parser


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    """Campaign-runner flags shared by the section2/section4 subcommands."""
    group = parser.add_argument_group("execution")
    group.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = in-process serial path; output is "
        "byte-identical for every value)",
    )
    group.add_argument(
        "--checkpoint",
        default=None,
        metavar="DIR",
        help="shard-checkpoint directory (enables incremental persistence "
        "and --resume)",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="continue a checkpointed campaign, skipping completed units "
        "(requires --checkpoint; refuses a mismatched campaign fingerprint)",
    )
    group.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="flush shard files every N completed units (default 25)",
    )
    group.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry a unit that runs longer than this on a worker",
    )
    group.add_argument(
        "--progress",
        action="store_true",
        help="print progress/rate/ETA telemetry to stderr",
    )
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--obs",
        action="store_true",
        help="record a deterministic obs trace alongside the artefact "
        "(also enabled by REPRO_OBS=1; study output stays byte-identical)",
    )
    obs.add_argument(
        "--obs-out",
        default=None,
        metavar="FILE",
        help="obs trace path (default: <out>.obs.jsonl)",
    )


def _split_csv(value: Optional[str]) -> Optional[List[str]]:
    if value is None:
        return None
    items = [v.strip() for v in value.split(",") if v.strip()]
    return items or None


def _dedupe(kind: str, items: Optional[List[str]]) -> Optional[List[str]]:
    """Drop duplicate entries preserving first-seen order, warning on stderr.

    Duplicates in ``--sites``/``--clients`` would silently run every paired
    measurement for the duplicated name twice (and double-count it in every
    figure downstream).
    """
    if not items:
        return items
    seen = dict.fromkeys(items)
    if len(seen) != len(items):
        dropped = len(items) - len(seen)
        print(
            f"warning: ignoring {dropped} duplicate {kind} entr"
            f"{'y' if dropped == 1 else 'ies'} in --{kind} "
            f"(kept first occurrence, order preserved)",
            file=sys.stderr,
        )
    return list(seen)


def _runner_kwargs(args) -> dict:
    if args.resume and args.checkpoint is None:
        raise _UsageError("--resume requires --checkpoint DIR")
    if args.jobs < 1:
        raise _UsageError("--jobs must be >= 1")
    kwargs = {
        "jobs": args.jobs,
        "checkpoint": args.checkpoint,
        "resume": args.resume,
        "progress": args.progress,
        "unit_timeout": args.unit_timeout,
    }
    if args.checkpoint_every is not None:
        if args.checkpoint_every < 1:
            raise _UsageError("--checkpoint-every must be >= 1")
        kwargs["checkpoint_every"] = args.checkpoint_every
    return kwargs


class _UsageError(Exception):
    """Bad flag combination; rendered to stderr with exit code 2."""


@contextmanager
def _obs_capture(args) -> Iterator[None]:
    """Capture an obs trace around a campaign when ``--obs``/REPRO_OBS is on.

    Installs a fresh process-global observer, exports REPRO_OBS and a shard
    directory (worker processes dump their own traces there at shutdown),
    runs the campaign, then merges the parent trace with every worker shard
    into ``--obs-out`` (default ``<out>.obs.jsonl``).  Study artefacts are
    untouched: observation is read-only and spans are keyed by sim-time.
    """
    from repro.obs.core import (
        OBS_DIR_ENV_VAR,
        OBS_ENV_VAR,
        global_observer,
        observe_enabled_from_env,
        reset_global_observer,
    )

    if not (getattr(args, "obs", False) or observe_enabled_from_env()):
        yield
        return
    out = args.obs_out if args.obs_out else args.out + ".obs.jsonl"
    shard_dir = out + ".shards"
    os.makedirs(shard_dir, exist_ok=True)
    saved = {k: os.environ.get(k) for k in (OBS_ENV_VAR, OBS_DIR_ENV_VAR)}
    os.environ[OBS_ENV_VAR] = "1"
    os.environ[OBS_DIR_ENV_VAR] = shard_dir
    reset_global_observer()
    observer = global_observer(create=True)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        if observer is not None:
            _write_obs_trace(observer, out, shard_dir)
        reset_global_observer()


def _write_obs_trace(observer, out: str, shard_dir: str) -> None:
    """Merge the parent observer with worker shards and write ``out``."""
    import shutil

    from repro.obs.export import ObsTrace

    traces = [ObsTrace.from_observer(observer)]
    for name in sorted(os.listdir(shard_dir)):
        if not name.endswith(".obs.jsonl"):
            continue
        try:
            traces.append(ObsTrace.load_jsonl(os.path.join(shard_dir, name)))
        except ValueError as exc:
            print(
                f"warning: skipping corrupt obs shard {name}: {exc}",
                file=sys.stderr,
            )
    merged = ObsTrace.merge(traces)
    merged.save_jsonl(out)
    shutil.rmtree(shard_dir, ignore_errors=True)
    n_spans = sum(1 for r in merged.records if r.kind == "span")
    print(
        f"wrote obs trace to {out} "
        f"({len(merged.records)} records, {n_spans} spans)"
    )


def _cmd_section2(args) -> int:
    sites = _dedupe("sites", _split_csv(args.sites)) or ["eBay"]
    unknown = [s for s in sites if s not in SITES]
    if unknown:
        print(f"error: unknown sites {unknown}; choose from {list(SITES)}",
              file=sys.stderr)
        return 2
    scenario = Scenario.build(
        ScenarioSpec.section2(sites=tuple(sites)), seed=args.seed
    )
    clients = _dedupe("clients", _split_csv(args.clients))
    if clients:
        missing = [c for c in clients if c not in scenario.client_names]
        if missing:
            print(f"error: unknown clients {missing}", file=sys.stderr)
            return 2
    study = Section2Study(scenario, repetitions=args.reps)
    with _obs_capture(args):
        store = study.run(sites=sites, clients=clients, **_runner_kwargs(args))
    store.save_jsonl(args.out)
    print(f"wrote {len(store)} records to {args.out}")
    return 0


def _cmd_section4(args) -> int:
    try:
        set_sizes = [int(v) for v in args.set_sizes.split(",") if v.strip()]
    except ValueError:
        print("error: --set-sizes must be comma-separated integers", file=sys.stderr)
        return 2
    if not set_sizes or any(k < 1 for k in set_sizes):
        print("error: set sizes must be positive", file=sys.stderr)
        return 2
    scenario = Scenario.build(ScenarioSpec.section4(), seed=args.seed)
    study = Section4Study(scenario, repetitions=args.reps)
    with _obs_capture(args):
        store = study.run_random_set_sweep(set_sizes, **_runner_kwargs(args))
    store.save_jsonl(args.out)
    print(f"wrote {len(store)} records to {args.out}")
    return 0


def _cmd_failures(args) -> int:
    from repro.workloads.failures import (
        FAILURES_SESSION_CONFIG,
        FailureStudyParams,
        plan_failures,
    )

    if args.site not in SITES:
        print(
            f"error: unknown site {args.site!r}; choose from {list(SITES)}",
            file=sys.stderr,
        )
        return 2
    scenario = Scenario.build(
        ScenarioSpec.section2(sites=(args.site,)), seed=args.seed
    )
    clients = _dedupe("clients", _split_csv(args.clients))
    if clients:
        missing = [c for c in clients if c not in scenario.client_names]
        if missing:
            print(f"error: unknown clients {missing}", file=sys.stderr)
            return 2
    reps = args.reps
    if args.quick:
        # A fixed tiny campaign: deterministic, covers every injection mode
        # twice per client, finishes in seconds.
        reps = 8
        clients = clients or scenario.client_names[:2]
    params = FailureStudyParams(
        link_mtbf=args.link_mtbf,
        link_mean_duration=args.link_duration,
        node_mtbf=args.node_mtbf,
        node_mean_duration=args.node_duration,
    )
    plan = plan_failures(
        scenario,
        repetitions=reps,
        interval=args.interval,
        config=FAILURES_SESSION_CONFIG,
        params=params,
        site=args.site,
        clients=clients,
    )
    with _obs_capture(args):
        result = execute_plan(plan, scenario=scenario, **_runner_kwargs(args))
    store = result.store
    if store is None:  # pragma: no cover - max_units is not exposed here
        print("campaign incomplete; resume with --checkpoint/--resume")
        return 1
    store.save_jsonl(args.out)
    print(f"wrote {len(store)} records to {args.out}")
    print()
    print(render_availability(store.records))
    return 0


def _cmd_mhttp(args) -> int:
    from repro.analysis.mhttp import render_mhttp
    from repro.util.units import kb
    from repro.workloads.mhttp import (
        MHTTP_SESSION_CONFIG,
        MhttpStudyParams,
        plan_mhttp,
    )

    if args.site not in SITES:
        print(
            f"error: unknown site {args.site!r}; choose from {list(SITES)}",
            file=sys.stderr,
        )
        return 2
    try:
        ks = [int(v) for v in args.ks.split(",") if v.strip()]
    except ValueError:
        print("error: --ks must be comma-separated integers", file=sys.stderr)
        return 2
    if not ks or any(k < 2 for k in ks):
        print("error: stripe widths must be >= 2", file=sys.stderr)
        return 2
    scenario = Scenario.build(
        ScenarioSpec.section2(sites=(args.site,)), seed=args.seed
    )
    clients = _dedupe("clients", _split_csv(args.clients))
    if clients:
        missing = [c for c in clients if c not in scenario.client_names]
        if missing:
            print(f"error: unknown clients {missing}", file=sys.stderr)
            return 2
    reps = args.reps
    if args.quick:
        # A fixed tiny campaign: both mechanisms and both injection modes
        # once per client at k=2, finishes in seconds.
        reps = 2
        ks = [2]
        clients = clients or scenario.client_names[:2]
    params = MhttpStudyParams(
        block_bytes=kb(args.block_kb),
        window=args.window,
        crash_duration=args.crash_duration,
    )
    plan = plan_mhttp(
        scenario,
        repetitions=reps,
        interval=args.interval,
        ks=ks,
        config=MHTTP_SESSION_CONFIG,
        params=params,
        site=args.site,
        clients=clients,
    )
    with _obs_capture(args):
        result = execute_plan(plan, scenario=scenario, **_runner_kwargs(args))
    store = result.store
    if store is None:  # pragma: no cover - max_units is not exposed here
        print("campaign incomplete; resume with --checkpoint/--resume")
        return 1
    store.save_jsonl(args.out)
    print(f"wrote {len(store)} records to {args.out}")
    print()
    print(render_mhttp(store.records))
    return 0


def _cmd_chaos(args) -> int:
    from repro.analysis.chaos import render_chaos
    from repro.workloads.chaos import (
        CHAOS_SESSION_CONFIG,
        ChaosStudyParams,
        plan_chaos,
    )

    if args.site not in SITES:
        print(
            f"error: unknown site {args.site!r}; choose from {list(SITES)}",
            file=sys.stderr,
        )
        return 2
    families = _split_csv(args.families) or list(FAULT_FAMILIES)
    intensities = _split_csv(args.intensities) or list(FAULT_INTENSITIES)
    scenario = Scenario.build(
        ScenarioSpec.section2(sites=(args.site,)), seed=args.seed
    )
    clients = _dedupe("clients", _split_csv(args.clients))
    if clients:
        missing = [c for c in clients if c not in scenario.client_names]
        if missing:
            print(f"error: unknown clients {missing}", file=sys.stderr)
            return 2
    reps = args.reps
    if args.quick:
        # A fixed tiny campaign: the two acceptance families at one
        # intensity, every mechanism arm, finishes in seconds.
        reps = 1
        families = ["none", "gray", "correlated"]
        intensities = ["severe"]
        clients = clients or scenario.client_names[:2]
    try:
        plan = plan_chaos(
            scenario,
            repetitions=reps,
            interval=args.interval,
            k=args.k,
            families=families,
            intensities=intensities,
            config=CHAOS_SESSION_CONFIG,
            params=ChaosStudyParams(),
            site=args.site,
            clients=clients,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with _obs_capture(args):
        result = execute_plan(plan, scenario=scenario, **_runner_kwargs(args))
    store = result.store
    if store is None:  # pragma: no cover - max_units is not exposed here
        print("campaign incomplete; resume with --checkpoint/--resume")
        return 1
    store.save_jsonl(args.out)
    print(f"wrote {len(store)} records to {args.out}")
    print()
    print(render_chaos(store.records))
    return 0


def _cmd_scale(args) -> int:
    from repro.analysis.scale import render_scale
    from repro.workloads.scale import (
        SCALE_SESSION_CONFIG,
        ScaleStudyParams,
        plan_scale,
    )

    if args.site not in SITES:
        print(
            f"error: unknown site {args.site!r}; choose from {list(SITES)}",
            file=sys.stderr,
        )
        return 2
    if args.waves < 1:
        print("error: --waves must be >= 1", file=sys.stderr)
        return 2
    clients = args.clients
    if args.quick:
        clients = min(clients, 10_000)
    try:
        params = ScaleStudyParams(
            clients_per_wave=clients,
            n_relays=args.relays,
            engine=args.engine,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    scenario = Scenario.build(
        ScenarioSpec.section2(sites=(args.site,)), seed=args.seed
    )
    plan = plan_scale(
        scenario,
        waves=args.waves,
        config=SCALE_SESSION_CONFIG,
        params=params,
        site=args.site,
    )
    with _obs_capture(args):
        result = execute_plan(plan, scenario=scenario, **_runner_kwargs(args))
    store = result.store
    if store is None:  # pragma: no cover - max_units is not exposed here
        print("campaign incomplete; resume with --checkpoint/--resume")
        return 1
    store.save_jsonl(args.out)
    print(f"wrote {len(store)} records to {args.out}")
    print()
    print(render_scale(store.records))
    return 0


def _render_artifact(name: str, store: TraceStore, *, client: str) -> str:
    if name == "all":
        return full_report(store, table3_client=client)
    if name == "headline":
        return render_headline(headline_stats(store))
    if name == "fig1":
        return render_fig1(improvement_histogram(store))
    if name == "fig2":
        return render_fig2(per_client_histograms(store))
    if name == "fig3":
        return render_fig3([improvement_vs_throughput(store, label="all clients")])
    if name == "fig4":
        return render_fig4(indirect_throughput_series(store))
    if name == "fig5":
        return render_fig5(total_utilization_stats(store))
    if name == "fig6":
        return render_fig6(random_set_curves(store))
    if name == "table1":
        return render_table1(penalty_table(store))
    if name == "table2":
        return render_table2(top_relays_per_client(store))
    if name == "table3":
        rows = utilization_vs_improvement(store, client)
        return render_table3(rows, client=client)
    raise ValueError(f"unknown artifact {name!r}")  # pragma: no cover


def _cmd_report(args) -> int:
    try:
        store = TraceStore.load_jsonl(args.store)
    except FileNotFoundError:
        print(f"error: store {args.store!r} not found", file=sys.stderr)
        return 2
    if len(store) == 0:
        print("error: store is empty", file=sys.stderr)
        return 2
    for name in args.artifact:
        print(_render_artifact(name, store, client=args.client))
        print()
    return 0


def _cmd_catalog(_args) -> int:
    print(
        render_table(
            ["#", "country", "domain name"],
            [(i + 1, e.name, e.hostname) for i, e in enumerate(CLIENT_CATALOG)],
            title="Table IV - PlanetLab client nodes",
        )
    )
    print()
    print(
        render_table(
            ["#", "university", "domain name"],
            [(i + 1, e.name, e.hostname) for i, e in enumerate(RELAY_CATALOG)],
            title="Table V - PlanetLab intermediate nodes",
        )
    )
    print()
    extras = [e for e in SECTION4_RELAY_CATALOG if e not in RELAY_CATALOG]
    print(
        render_table(
            ["#", "university", "domain name", "extrapolated"],
            [
                (i + 1, e.name, e.hostname, "yes" if e.extrapolated else "no")
                for i, e in enumerate(extras)
            ],
            title="Additional §4 intermediate nodes (Table III / extrapolated)",
        )
    )
    return 0


def _render_rule_catalog() -> str:
    lines = ["Static lint rules (suppress with `# qa: ignore[CODE]`):"]
    for code, rule in RULES.items():
        if rule.analyzer != "lint":
            continue
        lines.append(f"  {code}  {rule.name} [{rule.scope}]")
        lines.append(f"      {rule.summary}")
        lines.append(f"      fix: {rule.hint}")
    lines.append("")
    lines.append("Whole-program flow rules (`repro check`, same suppression syntax):")
    for code, rule in RULES.items():
        if rule.analyzer != "flow":
            continue
        lines.append(f"  {code}  {rule.name} [{rule.scope}]")
        lines.append(f"      {rule.summary}")
        lines.append(f"      fix: {rule.hint}")
    lines.append("")
    lines.append("Runtime invariants (enable with REPRO_SANITIZE=1):")
    for code, inv in INVARIANTS.items():
        lines.append(f"  {code}  {inv.name}")
        lines.append(f"      {inv.summary}")
    return "\n".join(lines)


def _cmd_lint(args) -> int:
    if args.rules:
        print(_render_rule_catalog())
        return 0
    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such file or directory: {missing}", file=sys.stderr)
        return 2
    findings = lint_paths(args.paths)
    for finding in findings:
        print(finding.format(hints=not args.no_hints))
    n_files = sum(1 for _ in iter_python_files(args.paths))
    if findings:
        print(f"{len(findings)} finding(s) in {n_files} file(s)")
        return 1
    print(f"clean: 0 findings in {n_files} file(s)")
    return 0


def _cmd_check(args) -> int:
    # Imported lazily: the flow analyzer is only needed by this command.
    import json as _json

    from repro.qa.files import iter_python_files as _iter_files
    from repro.qa.flow import (
        Baseline,
        analyze_paths,
        to_sarif,
        write_baseline,
    )

    missing = [p for p in args.paths if not os.path.exists(p)]
    if missing:
        print(f"error: no such file or directory: {missing}", file=sys.stderr)
        return 2
    findings = analyze_paths(args.paths)
    n_files = sum(1 for _ in _iter_files(args.paths))

    if args.write_baseline:
        write_baseline(
            findings,
            args.write_baseline,
            justification="TODO: justify this accepted finding or fix it",
        )
        print(
            f"wrote baseline accepting {len(findings)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0

    # With `--sarif -` the JSON owns stdout; the human report moves to
    # stderr so the output stays machine-consumable.
    report = sys.stdout
    if args.sarif:
        doc = to_sarif(findings)
        text = _json.dumps(doc, indent=2, sort_keys=False)
        if args.sarif == "-":
            print(text)
            report = sys.stderr
        else:
            with open(args.sarif, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")

    accepted_n = 0
    to_report = findings
    if args.baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except FileNotFoundError:
            print(f"error: baseline {args.baseline!r} not found", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = baseline.apply(findings)
        to_report = result.new
        accepted_n = len(result.accepted)
        for entry in result.stale:
            print(
                f"warning: stale baseline entry {entry.code} {entry.path} "
                f"{entry.symbol} (no matching finding; remove it)",
                file=sys.stderr,
            )

    for finding in to_report:
        print(finding.format(hints=not args.no_hints), file=report)

    suffix = f", {accepted_n} accepted by baseline" if args.baseline else ""
    if to_report:
        print(f"{len(to_report)} finding(s) in {n_files} file(s){suffix}", file=report)
        return 1
    print(f"clean: 0 findings in {n_files} file(s){suffix}", file=report)
    return 0


def _cmd_perf(args) -> int:
    # Imported lazily: the perf package pulls in the whole simulator stack.
    from repro.perf import BENCHES, BenchReport, run_benches
    from repro.perf.report import (
        DEFAULT_TOLERANCE,
        compare_reports,
        format_comparison,
        format_report,
        load_report,
        seed_missing_baselines,
    )

    names = _split_csv(args.only)
    if names:
        unknown = [n for n in names if n not in BENCHES]
        if unknown:
            raise _UsageError(
                f"unknown bench(es) {unknown}; choose from {list(BENCHES)}"
            )
    tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
    if tolerance < 0.0:
        raise _UsageError("--tolerance must be >= 0")

    stored = None
    if args.baseline is not None:
        try:
            stored = load_report(args.baseline)
        except FileNotFoundError:
            print(f"error: baseline {args.baseline!r} not found", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    def progress(name: str) -> None:
        print(f"running {name} ...", file=sys.stderr)

    if args.obs:
        from repro.obs.core import OBS_ENV_VAR

        saved_obs = os.environ.get(OBS_ENV_VAR)
        os.environ[OBS_ENV_VAR] = "1"
        try:
            results = run_benches(names, quick=args.quick, progress=progress)
        finally:
            if saved_obs is None:
                os.environ.pop(OBS_ENV_VAR, None)
            else:
                os.environ[OBS_ENV_VAR] = saved_obs
    else:
        results = run_benches(names, quick=args.quick, progress=progress)
    report = BenchReport.from_results(results, quick=args.quick)
    # Benches with no seed-path toggle get a recorded yardstick: inherit it
    # from the report being overwritten (same mode only — quick and full
    # workloads are not comparable), else record this run as the first.
    prior = None
    try:
        prior = load_report(args.out)
    except (FileNotFoundError, ValueError):
        prior = None
    if prior is not None and prior.quick != args.quick:
        prior = None
    seed_missing_baselines(report, prior)
    print(format_report(report))
    report.save(args.out)
    print(f"wrote {args.out}")

    if stored is None:
        return 0
    comparisons = compare_reports(report, stored, tolerance=tolerance)
    print()
    print(format_comparison(comparisons, tolerance=tolerance))
    return 1 if any(c.regressed for c in comparisons) else 0


def _load_obs_trace(path: str):
    """Load an obs trace, mapping load failures onto exit-code-2 errors."""
    from repro.obs.export import ObsTrace

    try:
        return ObsTrace.load_jsonl(path)
    except FileNotFoundError:
        raise _UsageError(f"trace {path!r} not found")
    except ValueError as exc:
        raise _UsageError(str(exc))


def _load_records(path: str):
    """Load a campaign artefact's records for the SLO evaluator."""
    from repro.trace.store import TraceStore

    try:
        return TraceStore.load_jsonl(path).records
    except FileNotFoundError:
        raise _UsageError(f"records {path!r} not found")
    except (ValueError, KeyError, TypeError) as exc:
        raise _UsageError(f"cannot load records {path!r}: {exc}")


def _cmd_obs(args) -> int:
    import json

    from repro.obs.export import validate_chrome_trace

    if args.obs_command == "diff":
        from repro.obs.diff import DiffTolerances, diff_traces, render_diff

        trace_a = _load_obs_trace(args.trace_a)
        trace_b = _load_obs_trace(args.trace_b)
        for name in ("duration_rel", "duration_abs", "counter_rel",
                     "counter_abs", "quantile_rel"):
            if getattr(args, name) < 0.0:
                raise _UsageError(f"--{name.replace('_', '-')} must be >= 0")
        diff = diff_traces(
            trace_a,
            trace_b,
            DiffTolerances(
                counter_rel=args.counter_rel,
                counter_abs=args.counter_abs,
                duration_rel=args.duration_rel,
                duration_abs=args.duration_abs,
                quantile_rel=args.quantile_rel,
            ),
            include_wallclock=args.include_wallclock,
        )
        print(render_diff(diff, verbose=args.verbose))
        return 0 if diff.clean else 1
    if args.obs_command == "slo":
        from repro.obs.slo import evaluate_slo, load_slo_spec, render_slo

        try:
            spec = load_slo_spec(args.spec)
        except FileNotFoundError:
            raise _UsageError(f"spec {args.spec!r} not found")
        except ValueError as exc:
            raise _UsageError(str(exc))
        records = _load_records(args.records) if args.records else None
        trace = _load_obs_trace(args.trace) if args.trace else None
        report = evaluate_slo(spec, records=records, trace=trace)
        print(render_slo(report))
        return 0 if report.clean else 1
    if args.obs_command == "report":
        from repro.obs.report import render_report
        from repro.obs.slo import evaluate_slo, load_slo_spec

        trace = _load_obs_trace(args.trace)
        slo_report = None
        if args.slo:
            try:
                spec = load_slo_spec(args.slo)
            except FileNotFoundError:
                raise _UsageError(f"spec {args.slo!r} not found")
            except ValueError as exc:
                raise _UsageError(str(exc))
            records = _load_records(args.records) if args.records else None
            slo_report = evaluate_slo(spec, records=records, trace=trace)
        html = render_report(trace, title=args.title, slo=slo_report)
        out = args.out if args.out else args.trace + ".health.html"
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(html)
        print(f"wrote campaign health report to {out}")
        return 0
    if args.obs_command == "phases":
        from repro.obs.insight import attribute_trace, render_insight

        if not 0.0 < args.quantile <= 1.0:
            raise _UsageError("--quantile must be in (0, 1]")
        trace = _load_obs_trace(args.trace)
        sessions = attribute_trace(trace)
        print(render_insight(sessions, quantiles=(0.5, args.quantile)))
        return 0

    trace = _load_obs_trace(args.trace)
    if args.obs_command == "summarize":
        print(trace.summarize(top=args.top))
        return 0
    if args.obs_command == "chrome":
        data = trace.to_chrome()
        errors = validate_chrome_trace(data)
        if errors:
            for err in errors:
                print(f"error: {err}", file=sys.stderr)
            return 1
        out = args.out if args.out else args.trace + ".chrome.json"
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(data, fh, sort_keys=True)
            fh.write("\n")
        print(f"wrote {len(data['traceEvents'])} trace events to {out}")
        return 0
    if args.obs_command == "metrics":
        text = trace.to_prometheus()
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote {args.out}")
        else:
            print(text, end="")
        return 0
    raise ValueError(
        f"unknown obs command {args.obs_command!r}"
    )  # pragma: no cover


def _cmd_selfcheck(_args) -> int:
    # Imported lazily: selfcheck pulls in the whole simulator stack.
    from repro.qa.selfcheck import render_results, run_selfcheck

    results = run_selfcheck()
    print(render_results(results))
    return 0 if all(r.passed for r in results) else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "section2": _cmd_section2,
        "section4": _cmd_section4,
        "failures": _cmd_failures,
        "mhttp": _cmd_mhttp,
        "chaos": _cmd_chaos,
        "scale": _cmd_scale,
        "report": _cmd_report,
        "catalog": _cmd_catalog,
        "lint": _cmd_lint,
        "check": _cmd_check,
        "selfcheck": _cmd_selfcheck,
        "perf": _cmd_perf,
        "obs": _cmd_obs,
    }
    try:
        return handlers[args.command](args)
    except _UsageError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except UnitExecutionError as exc:
        failure = exc.failure
        print(
            f"error: campaign aborted: unit {failure.unit_index} "
            f"(id {failure.unit_id}) failed {failure.attempts} attempt(s)",
            file=sys.stderr,
        )
        print(failure.error, file=sys.stderr)
        return 1
    except RunnerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # The runner flushes its checkpoint before re-raising, so the run
        # is resumable; tell the user how.
        checkpoint = getattr(args, "checkpoint", None)
        hint = (
            f"; resume with --checkpoint {checkpoint} --resume"
            if checkpoint
            else ""
        )
        print(f"interrupted{hint}", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `repro lint | head`); exit quietly
        # like other Unix filters. Point stdout at devnull so the interpreter
        # does not raise again while flushing during shutdown.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
