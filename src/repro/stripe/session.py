"""The striped transfer session: k concurrent paths, one object.

:class:`StripedSession` is the mHTTP-style client.  Where the paper's
:class:`~repro.core.session.TransferSession` probes, picks one path and
commits, a striped session opens the direct path plus ``k - 1`` relay paths
*at once* and pulls disjoint fixed-size blocks over all of them:

1. every path keeps up to ``window`` blocks in flight; when a block lands,
   the path immediately claims the next unclaimed block (work stealing -
   fast paths carry more of the object);
2. once the unclaimed pool drains, idle paths speculatively re-issue
   outstanding tail blocks (straggler mitigation; the losing copy's bytes
   are booked as duplicate waste);
3. a path whose in-flight blocks make no progress over a full health-check
   window is declared dead: its transfers are aborted and its blocks return
   to the scheduler for the surviving paths - no session-level failover
   gap, which is precisely the property the ``repro mhttp`` study measures
   against select-one under the PR 4 failure model;
4. on completion the reassembly buffer proves the result byte-identical to
   a single-path fetch (:meth:`~repro.stripe.blocks.ReassemblyBuffer.verify`).

Everything is deterministic: lanes are iterated in path order, completions
are drained in simulation event order, health checks fire at times derived
from the sim clock only, and the scheduler draws no randomness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.resilience import RecoveryEvent, SessionOutcome
from repro.http.messages import HttpRequest
from repro.http.transfer import HttpTransfer, TcpParams, issue_download
from repro.overlay.paths import OverlayPath, OverlayPathBuilder
from repro.sim.errors import TransferError
from repro.stripe.blocks import (
    BlockScheduler,
    ReassemblyBuffer,
    StripeConfig,
)
from repro.tcp.fluid import FluidNetwork

__all__ = ["StripeResult", "StripedSession"]


@dataclass
class StripeResult:
    """Everything observed about one striped download.

    The field set deliberately mirrors
    :class:`~repro.core.session.SessionResult` (``client``/``server``/
    ``resource``/``size``/timestamps/``outcome``/``recovery_events``/
    ``bytes_received``), so the runtime sanitizer's session post-conditions
    apply unchanged; the stripe-specific columns quantify the striping
    itself.
    """

    client: str
    server: str
    resource: str
    size: float
    paths: Tuple[str, ...]
    requested_at: float
    completed_at: float
    outcome: SessionOutcome = SessionOutcome.COMPLETED
    recovery_events: Tuple[RecoveryEvent, ...] = ()
    bytes_received: Optional[float] = None
    #: Stripe geometry and accounting.
    block_bytes: float = 0.0
    n_blocks: int = 0
    bytes_by_path: Tuple[Tuple[str, float], ...] = ()
    wasted_bytes: float = 0.0
    n_reissues: int = 0
    n_duplicate_blocks: int = 0
    failed_paths: Tuple[str, ...] = ()
    #: Content digest of the reassembled object (empty for aborted sessions).
    digest: str = ""

    #: Striped sessions have no separate probe/bulk phases; the sanitizer's
    #: session post-conditions read this field, so it exists and is None.
    remainder_started_at: Optional[float] = None

    @property
    def duration(self) -> float:
        """Request-to-last-byte time in seconds."""
        return self.completed_at - self.requested_at

    @property
    def delivered(self) -> float:
        """Payload bytes the client actually received (waste excluded)."""
        return self.size if self.bytes_received is None else self.bytes_received

    @property
    def end_to_end_throughput(self) -> float:
        """Whole-session goodput in bytes/second (0.0 for degenerate times)."""
        if self.duration <= 0.0:
            return 0.0
        return self.delivered / self.duration

    @property
    def k(self) -> int:
        """Number of paths the stripe opened (direct included)."""
        return len(self.paths)

    @property
    def wasted_fraction(self) -> float:
        """Duplicate/discarded bytes relative to the object size."""
        if self.size <= 0.0:
            return 0.0
        return self.wasted_bytes / self.size


@dataclass
class _Lane:
    """One path's in-flight state inside a striped session."""

    path: OverlayPath
    inflight: Dict[int, HttpTransfer] = field(default_factory=dict)
    issued_at: Dict[int, float] = field(default_factory=dict)
    #: Bytes fully accounted from transfers that left ``inflight``.
    banked: float = 0.0
    #: Committed payload bytes this lane contributed.
    payload: float = 0.0
    alive: bool = True
    #: Progress marker at the previous health check.
    last_progress: float = 0.0

    @property
    def label(self) -> str:
        return self.path.label

    def progress(self, now: float) -> float:
        """Monotone delivered-bytes marker used by the health check."""
        return self.banked + sum(
            float(t.flow.delivered_at(now)) for t in self.inflight.values()
        )


class StripedSession:
    """Runs striped multi-path downloads on one fluid network.

    Parameters
    ----------
    network:
        Transport engine (bound to a simulator).
    builder:
        Overlay path builder over the scenario topology.
    config:
        Stripe mechanism parameters (block size, windows, health checks).
    tcp:
        Per-connection TCP parameters for every block transfer.
    """

    def __init__(
        self,
        network: FluidNetwork,
        builder: OverlayPathBuilder,
        config: StripeConfig = StripeConfig(),
        *,
        tcp: TcpParams = TcpParams(),
    ):
        self._network = network
        self._builder = builder
        self._config = config
        self._tcp = tcp

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._network.sim.now

    # ------------------------------------------------------------------ #
    def download(
        self,
        client: str,
        server: str,
        resource: str,
        relays: Sequence[str],
    ) -> StripeResult:
        """One striped download over direct + ``relays`` (k = 1 + len(relays)).

        An empty ``relays`` degenerates to a single-path (direct) stripe,
        which is the block-granular equivalent of the control client.
        """
        paths = self._builder.striped(client, list(relays), server)
        return self._download_over(paths, client, server, resource)

    def _download_over(
        self,
        paths: List[OverlayPath],
        client: str,
        server: str,
        resource: str,
    ) -> StripeResult:
        cfg = self._config
        sim = self._network.sim
        size = float(paths[0].server.resource_size(resource))
        requested_at = self.now
        deadline_at = (
            math.inf
            if cfg.transfer_deadline is None
            else requested_at + cfg.transfer_deadline
        )
        sched = BlockScheduler(size, cfg.block_bytes)
        buf = ReassemblyBuffer(resource, int(size))
        lanes = [_Lane(path=p) for p in paths]
        by_label = {lane.label: lane for lane in lanes}
        if len(by_label) != len(lanes):
            raise ValueError(
                f"duplicate stripe paths: {[l.label for l in lanes]}"
            )

        #: (block, lane label, transfer) completions queued by the engine,
        #: drained in event order after each sim advance.
        completed: List[Tuple[int, str, HttpTransfer]] = []
        events: List[RecoveryEvent] = []
        wasted = 0.0
        n_reissues = 0
        n_duplicates = 0
        aborted = False

        def issue(lane: _Lane, block: int, *, reissued: bool) -> None:
            rng = sched.block_range(block)
            request = HttpRequest(
                host=lane.path.server.name,
                path=resource,
                byte_range=rng,
                via=lane.path.via,
            )
            label = lane.label
            transfer = issue_download(
                self._network,
                lane.path.route,
                lane.path.server,
                request,
                proxy=lane.path.proxy,
                tcp=self._tcp,
                on_complete=lambda tr, b=block, lab=label: completed.append(
                    (b, lab, tr)
                ),
                name=f"stripe:{label}:b{block}",
            )
            lane.inflight[block] = transfer
            lane.issued_at[block] = self.now
            obs = sim.observer
            if obs is not None:
                obs.count("stripe.blocks.issued")
                if reissued:
                    obs.count("stripe.blocks.reissued")

        def refill() -> None:
            nonlocal n_reissues
            for lane in lanes:
                if not lane.alive:
                    continue
                while len(lane.inflight) < cfg.window:
                    block = sched.claim(lane.label)
                    reissued = False
                    if block is None and cfg.straggler_reissue:
                        block = sched.reissue(
                            lane.label, max_copies=cfg.max_copies
                        )
                        reissued = block is not None
                    if block is None:
                        break
                    if reissued:
                        n_reissues += 1
                        events.append(RecoveryEvent(
                            time=self.now,
                            kind="reissue",
                            path=lane.label,
                            bytes_received=float(buf.committed_bytes),
                            detail=float(block),
                        ))
                    issue(lane, block, reissued=reissued)

        def retire(lane: _Lane, block: int) -> Tuple[float, HttpTransfer]:
            """Remove ``block`` from ``lane``; returns (delivered, transfer)."""
            transfer = lane.inflight.pop(block)
            lane.issued_at.pop(block, None)
            got = float(transfer.flow.delivered)
            lane.banked += got
            return got, transfer

        def kill_lane(lane: _Lane) -> None:
            nonlocal wasted
            lane.alive = False
            returned = sorted(lane.inflight)
            for block in returned:
                got, transfer = retire(lane, block)
                wasted += got
                if not transfer.done:
                    transfer.abort(self._network)
                sched.release(block, lane.label)
            events.append(RecoveryEvent(
                time=self.now,
                kind="path_dead",
                path=lane.label,
                bytes_received=float(buf.committed_bytes),
                detail=float(len(returned)),
            ))
            obs = sim.observer
            if obs is not None:
                obs.count("stripe.path_dead")
                obs.count("stripe.blocks.returned", float(len(returned)))

        def drain() -> None:
            nonlocal wasted, n_duplicates
            while completed:
                block, label, transfer = completed.pop(0)
                lane = by_label[label]
                if block not in lane.inflight:
                    continue  # lane died in this very batch; already booked
                got, _ = retire(lane, block)
                if block in sched.outstanding and label in sched.carriers_of(
                    block
                ):
                    losers = sched.commit(block, label)
                    rng = sched.block_range(block)
                    buf.commit(rng.first, rng.last)
                    lane.payload += got
                    obs = sim.observer
                    if obs is not None:
                        obs.span(
                            "stripe",
                            f"block:{block}",
                            lane.issued_at.get(block, requested_at),
                            self.now,
                            path=label,
                            first=rng.first,
                            last=rng.last,
                            bytes=got,
                        )
                        obs.count("stripe.blocks.committed")
                    for loser_label in losers:
                        loser = by_label[loser_label]
                        lost, lost_tr = retire(loser, block)
                        wasted += lost
                        n_duplicates += 1
                        if not lost_tr.done:
                            lost_tr.abort(self._network)
                else:
                    # A second copy finished in the same event batch.
                    sched.mark_duplicate(block, label)
                    wasted += got
                    n_duplicates += 1

        def health_check() -> None:
            for lane in lanes:
                if not lane.alive:
                    continue
                marker = lane.progress(self.now)
                stalled = bool(lane.inflight) and marker <= lane.last_progress
                lane.last_progress = marker
                if stalled:
                    kill_lane(lane)

        refill()
        next_check = requested_at + cfg.grace_period
        while not buf.complete:
            if not any(lane.alive for lane in lanes):
                aborted = True
                break
            if self.now >= deadline_at:
                aborted = True
                break
            wake_at = min(next_check, deadline_at)
            wake = sim.schedule_at(wake_at, _noop, name="stripe-check")
            frozen = False
            try:
                sim.run_until_true(
                    lambda: bool(completed) or sim.now >= wake_at
                )
            except TransferError:
                # The engine proved no active flow can ever progress again.
                frozen = True
            finally:
                sim.cancel(wake)
            drain()
            if buf.complete:
                break
            if frozen:
                for lane in lanes:
                    if lane.alive and lane.inflight:
                        kill_lane(lane)
            elif self.now >= next_check:
                health_check()
                next_check = self.now + cfg.check_interval
            refill()

        if aborted:
            for lane in lanes:
                if lane.alive and lane.inflight:
                    for block in sorted(lane.inflight):
                        got, transfer = retire(lane, block)
                        wasted += got
                        if not transfer.done:
                            transfer.abort(self._network)
                        sched.release(block, lane.label)
            events.append(RecoveryEvent(
                time=self.now,
                kind="abort",
                path="",
                bytes_received=float(buf.committed_bytes),
            ))

        failed = tuple(lane.label for lane in lanes if not lane.alive)
        if aborted:
            outcome = SessionOutcome.ABORTED
        elif failed:
            outcome = SessionOutcome.DEGRADED
        else:
            outcome = SessionOutcome.COMPLETED
        digest = "" if aborted else buf.verify()

        result = StripeResult(
            client=client,
            server=server,
            resource=resource,
            size=size,
            paths=tuple(lane.label for lane in lanes),
            requested_at=requested_at,
            completed_at=self.now,
            outcome=outcome,
            recovery_events=tuple(events),
            bytes_received=float(buf.committed_bytes) if aborted else None,
            block_bytes=float(cfg.block_bytes),
            n_blocks=sched.n_blocks,
            bytes_by_path=tuple(
                (lane.label, lane.payload) for lane in lanes
            ),
            wasted_bytes=wasted,
            n_reissues=n_reissues,
            n_duplicate_blocks=n_duplicates,
            failed_paths=failed,
            digest=digest,
        )
        return self._checked(result)

    # ------------------------------------------------------------------ #
    def _checked(self, result: StripeResult) -> StripeResult:
        """Sanitizer post-conditions + obs emission; every stripe exits here.

        :class:`StripeResult` is shaped like a session result on purpose,
        so the runtime sanitizer's session post-conditions (QA-R005) apply
        to striped sessions unchanged.
        """
        sanitizer = self._network.sim.sanitizer
        if sanitizer is not None:
            sanitizer.check_session_result(result)
        obs = self._network.sim.observer
        if obs is not None:
            obs.span(
                "session",
                f"{result.client}->{result.server}",
                result.requested_at,
                result.completed_at,
                outcome=result.outcome.value,
                stripe_k=result.k,
                bytes=result.delivered,
                wasted=result.wasted_bytes,
            )
            obs.count("session.outcome." + result.outcome.value)
            obs.count("stripe.sessions")
            if result.wasted_bytes > 0.0:
                obs.count("stripe.wasted_bytes", result.wasted_bytes)
            for ev in result.recovery_events:
                obs.event(
                    "recovery",
                    ev.kind,
                    ev.time,
                    path=ev.path,
                    bytes=ev.bytes_received,
                    detail=ev.detail,
                )
                obs.count("recovery." + ev.kind)
        return result


def _noop() -> None:
    return None
