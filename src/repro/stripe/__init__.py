"""Multipath striped transfers (the mHTTP rival design).

The paper's mechanism races probes and then commits a whole transfer to the
single winner; mHTTP (Kim, Khalili, Feldmann, Chen & Towsley) splits the
same object into fixed-size byte-range blocks and fetches them over several
paths *simultaneously*, so path diversity pays continuously instead of once
at selection time.  This package is that rival, built as a first-class
subsystem over the same overlay/HTTP/fluid substrate:

:mod:`repro.stripe.blocks`
    The deterministic block scheduler (work-stealing assignment, straggler
    re-issue, duplicate-byte accounting) and the in-order reassembly buffer
    that proves the striped result byte-identical to a single-path fetch.
:mod:`repro.stripe.session`
    :class:`StripedSession`, the client driving k concurrent paths with
    per-path in-flight windows and dead-path block reassignment (the PR 4
    failure model: a crashed relay costs re-issued blocks, not a
    session-level failover gap).
"""

from repro.stripe.blocks import (
    BlockScheduler,
    ReassemblyBuffer,
    StripeConfig,
    StripeIntegrityError,
    content_digest,
    synthetic_bytes,
)
from repro.stripe.session import StripeResult, StripedSession

__all__ = [
    "BlockScheduler",
    "ReassemblyBuffer",
    "StripeConfig",
    "StripeIntegrityError",
    "StripeResult",
    "StripedSession",
    "content_digest",
    "synthetic_bytes",
]
