"""Block scheduling and reassembly for striped (mHTTP-style) transfers.

A striped download splits an ``n``-byte object into fixed-size byte-range
*blocks* (the HTTP range layer's natural unit) and fetches them over several
paths at once.  Two pure data structures make that deterministic and
verifiable:

:class:`BlockScheduler`
    Tracks every block's lifecycle (unclaimed -> in flight -> committed).
    Assignment is *work stealing*: the next unclaimed block goes to the
    first path that asks with window headroom, so fast paths naturally
    carry more blocks.  Once the unclaimed pool drains, the tail can be
    *re-issued*: an outstanding straggler block is handed to a second path,
    and whichever copy lands first wins (the loser's bytes are counted as
    duplicate waste).  A dead path *releases* its outstanding blocks back
    to the unclaimed pool - the striped analogue of failover.
:class:`ReassemblyBuffer`
    Collects committed byte ranges in offset order, rejecting gaps and
    overlaps, and produces a content digest over deterministic synthetic
    bytes (:func:`synthetic_bytes`).  A striped fetch is *correct* exactly
    when its digest equals :func:`content_digest` of a single-path fetch of
    the same resource - the byte-identity check the tests rely on.

Both structures are plain sequential code driven by the simulation's event
order, so a striped session is as deterministic as the engine underneath:
same scenario, same seed, same block->path assignment, byte for byte.
"""

from __future__ import annotations

import bisect
import hashlib
import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.http.messages import ByteRange
from repro.util.units import kb
from repro.util.validation import check_positive

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "BlockScheduler",
    "ReassemblyBuffer",
    "StripeConfig",
    "StripeIntegrityError",
    "content_digest",
    "synthetic_bytes",
]

#: Default stripe block size.  512 KB over the paper's 8 MB object gives 16
#: blocks - enough parallel grain for 2-4 paths without drowning the fluid
#: engine in per-block flow churn.
DEFAULT_BLOCK_BYTES: float = kb(512)

#: Page granularity of the synthetic content model (see :func:`synthetic_bytes`).
_PAGE_BYTES: int = int(kb(4))


class StripeIntegrityError(RuntimeError):
    """The reassembled object is not byte-identical to a single-path fetch."""


@dataclass(frozen=True)
class StripeConfig:
    """Client-side knobs of the striped transfer mechanism.

    Attributes
    ----------
    block_bytes:
        Fixed block size; the last block of an object may be shorter.
    window:
        Blocks a single path may have in flight at once.
    straggler_reissue:
        Once the unclaimed pool drains, allow idle paths to fetch a second
        copy of outstanding tail blocks (first copy to land wins; the
        loser's bytes count as duplicate waste).
    max_copies:
        Bound on concurrent copies of one block (re-issue included).
    check_interval / grace_period:
        Path-health sampling: after a ``grace_period`` warm-up the session
        samples every path's delivered bytes every ``check_interval``
        seconds; a path whose in-flight blocks made zero progress over a
        full window is declared dead and releases its blocks.
    transfer_deadline:
        Bound on the whole session (seconds from request); ``None`` leaves
        it unbounded.
    """

    block_bytes: float = DEFAULT_BLOCK_BYTES
    window: int = 2
    straggler_reissue: bool = True
    max_copies: int = 2
    check_interval: float = 4.0
    grace_period: float = 3.0
    transfer_deadline: Optional[float] = None

    def __post_init__(self) -> None:
        check_positive(self.block_bytes, "block_bytes")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.max_copies < 1:
            raise ValueError(f"max_copies must be >= 1, got {self.max_copies}")
        check_positive(self.check_interval, "check_interval")
        check_positive(self.grace_period, "grace_period")
        if self.transfer_deadline is not None:
            check_positive(self.transfer_deadline, "transfer_deadline")


# --------------------------------------------------------------------------- #
# scheduler
# --------------------------------------------------------------------------- #
class BlockScheduler:
    """Deterministic block lifecycle tracker for one striped download.

    The scheduler never looks at the clock or draws randomness: every
    decision is a pure function of the call sequence, which the session
    derives from simulation event order.  Blocks are always handed out
    lowest-index first, so the tail of the object is also the tail of the
    schedule.
    """

    def __init__(self, size: float, block_bytes: float):
        check_positive(size, "size")
        check_positive(block_bytes, "block_bytes")
        self._size = int(size)
        self._block_bytes = int(block_bytes)
        self.n_blocks = max(1, math.ceil(self._size / self._block_bytes))
        #: Min-heap of unclaimed block ids (released blocks return here).
        self._unclaimed: List[int] = list(range(self.n_blocks))
        heapq.heapify(self._unclaimed)
        #: block id -> labels of paths currently carrying a copy.
        self._carriers: Dict[int, List[str]] = {}
        self._done: set = set()

    # ------------------------------------------------------------------ #
    def block_range(self, block: int) -> ByteRange:
        """The inclusive byte range block ``block`` covers."""
        if not 0 <= block < self.n_blocks:
            raise ValueError(f"block {block} out of range [0, {self.n_blocks})")
        first = block * self._block_bytes
        last = min(first + self._block_bytes, self._size) - 1
        return ByteRange(first, last)

    def block_length(self, block: int) -> int:
        """Payload bytes of block ``block`` (the last block may be short)."""
        return self.block_range(block).length

    @property
    def complete(self) -> bool:
        """True once every block has been committed."""
        return len(self._done) == self.n_blocks

    @property
    def outstanding(self) -> List[int]:
        """In-flight, not-yet-committed block ids (ascending)."""
        return sorted(self._carriers)

    def carriers_of(self, block: int) -> Tuple[str, ...]:
        """Labels of the paths currently carrying ``block``."""
        return tuple(self._carriers.get(block, ()))

    # ------------------------------------------------------------------ #
    def claim(self, lane: str) -> Optional[int]:
        """Work-stealing assignment: the lowest unclaimed block, or ``None``.

        The first path that asks gets the block - which path that *is* for
        a given call position is decided by the session's deterministic
        lane iteration, not by wall-clock races.
        """
        while self._unclaimed:
            block = heapq.heappop(self._unclaimed)
            if block in self._done or block in self._carriers:
                continue  # released twice or re-claimed meanwhile; skip
            self._carriers[block] = [lane]
            return block
        return None

    def reissue(self, lane: str, *, max_copies: int) -> Optional[int]:
        """Straggler re-issue: a second copy of the lowest outstanding block.

        Returns the block id now also carried by ``lane``, or ``None`` when
        no outstanding block qualifies (all carried by ``lane`` already, or
        at their copy bound).
        """
        for block in sorted(self._carriers):
            labels = self._carriers[block]
            if lane in labels or len(labels) >= max_copies:
                continue
            labels.append(lane)
            return block
        return None

    def commit(self, block: int, lane: str) -> Tuple[str, ...]:
        """Mark ``block`` delivered by ``lane``; returns the losing carriers.

        The losers' in-flight copies are now useless - the session aborts
        them and books their delivered bytes as duplicate waste.
        """
        labels = self._carriers.pop(block, None)
        if labels is None or lane not in labels:
            raise ValueError(f"block {block} is not in flight on {lane!r}")
        if block in self._done:  # pragma: no cover - commit() pops carriers
            raise ValueError(f"block {block} was already committed")
        self._done.add(block)
        return tuple(label for label in labels if label != lane)

    def mark_duplicate(self, block: int, lane: str) -> None:
        """Drop ``lane``'s copy of an already-committed ``block``.

        Used when two copies of one block complete inside the same event
        batch: the first :meth:`commit` wins, the second completion lands
        here.
        """
        if block not in self._done:
            raise ValueError(f"block {block} is not committed")

    def release(self, block: int, lane: str) -> bool:
        """A dead path returns its copy of ``block`` to the scheduler.

        Returns True when the block went back to the unclaimed pool (no
        surviving carrier), False when another path still carries it.
        """
        labels = self._carriers.get(block)
        if labels is None or lane not in labels:
            raise ValueError(f"block {block} is not in flight on {lane!r}")
        labels.remove(lane)
        if labels:
            return False
        del self._carriers[block]
        heapq.heappush(self._unclaimed, block)
        return True


# --------------------------------------------------------------------------- #
# reassembly + byte identity
# --------------------------------------------------------------------------- #
def synthetic_bytes(resource: str, first: int, last: int) -> bytes:
    """Deterministic content of ``resource`` over inclusive ``[first, last]``.

    The simulator moves fluid, not payloads, so byte identity is checked
    against a synthetic content model: byte ``i`` of a resource is a pure
    function of ``(resource, i)``, materialised page-wise (each 4 KB page
    is a BLAKE2b keystream of its page index).  Because content depends
    only on absolute offsets, any partition of ``[0, n)`` into ranges
    concatenates to the same bytes - which is exactly what makes the
    reassembly digest comparable to a single-path fetch.
    """
    if first < 0 or last < first:
        raise ValueError(f"invalid byte range [{first}, {last}]")
    out = bytearray()
    page = first // _PAGE_BYTES
    while page * _PAGE_BYTES <= last:
        seed = f"{resource}:{page}".encode("utf-8")
        pattern = hashlib.blake2b(seed, digest_size=32).digest()
        reps = _PAGE_BYTES // len(pattern)
        page_bytes = pattern * reps
        page_start = page * _PAGE_BYTES
        lo = max(first, page_start) - page_start
        hi = min(last, page_start + _PAGE_BYTES - 1) - page_start
        out += page_bytes[lo : hi + 1]
        page += 1
    return bytes(out)


def content_digest(resource: str, size: int) -> str:
    """Digest of a single-path fetch of the whole ``size``-byte resource."""
    check_positive(size, "size")
    return _digest_ranges(resource, [(0, size - 1)])


def _digest_ranges(resource: str, ranges: List[Tuple[int, int]]) -> str:
    hasher = hashlib.blake2b(digest_size=16)
    for first, last in ranges:
        hasher.update(synthetic_bytes(resource, first, last))
    return hasher.hexdigest()


class ReassemblyBuffer:
    """In-order reassembly of committed byte ranges for one resource.

    ``commit`` rejects out-of-bounds and overlapping ranges immediately;
    :meth:`digest` additionally proves the committed ranges tile ``[0, n)``
    exactly and returns the content digest of the reassembled bytes, which
    must equal :func:`content_digest` for the fetch to count as correct.
    """

    def __init__(self, resource: str, size: int):
        check_positive(size, "size")
        self._resource = resource
        self._size = int(size)
        #: Committed (first, last) ranges, kept sorted by first offset.
        self._ranges: List[Tuple[int, int]] = []
        self._committed = 0

    @property
    def size(self) -> int:
        return self._size

    @property
    def committed_bytes(self) -> int:
        """Total payload bytes committed so far."""
        return self._committed

    @property
    def complete(self) -> bool:
        """True once committed bytes cover the whole object.

        ``commit`` forbids overlaps and out-of-bounds ranges, so reaching
        ``size`` committed bytes implies a gap-free tiling.
        """
        return self._committed >= self._size

    def commit(self, first: int, last: int) -> None:
        """Accept the inclusive range ``[first, last]`` as delivered."""
        if first < 0 or last < first or last >= self._size:
            raise StripeIntegrityError(
                f"range [{first}, {last}] outside object [0, {self._size})"
            )
        idx = bisect.bisect_left(self._ranges, (first, last))
        if idx > 0 and self._ranges[idx - 1][1] >= first:
            raise StripeIntegrityError(
                f"range [{first}, {last}] overlaps committed "
                f"{self._ranges[idx - 1]}"
            )
        if idx < len(self._ranges) and self._ranges[idx][0] <= last:
            raise StripeIntegrityError(
                f"range [{first}, {last}] overlaps committed {self._ranges[idx]}"
            )
        self._ranges.insert(idx, (first, last))
        self._committed += last - first + 1

    def gaps(self) -> List[Tuple[int, int]]:
        """Uncovered (first, last) ranges, ascending (empty when complete)."""
        out: List[Tuple[int, int]] = []
        cursor = 0
        for first, last in self._ranges:
            if first > cursor:
                out.append((cursor, first - 1))
            cursor = last + 1
        if cursor < self._size:
            out.append((cursor, self._size - 1))
        return out

    def digest(self) -> str:
        """Content digest of the reassembled object.

        Raises :class:`StripeIntegrityError` unless the committed ranges
        tile ``[0, size)`` exactly (no gaps - overlaps were rejected at
        commit time).
        """
        holes = self.gaps()
        if holes:
            raise StripeIntegrityError(
                f"object has {len(holes)} uncovered range(s), first {holes[0]}"
            )
        return _digest_ranges(self._resource, self._ranges)

    def verify(self) -> str:
        """Prove byte identity with a single-path fetch; returns the digest."""
        got = self.digest()
        want = content_digest(self._resource, self._size)
        if got != want:
            raise StripeIntegrityError(
                f"reassembled digest {got} != single-path digest {want}"
            )
        return got
